//! The worker wire protocol: how the process-level experiment backend
//! ships probe jobs to `spiffi-worker` children and reads results back.
//!
//! The protocol is deliberately dumb — line-oriented, versioned, and
//! self-contained — so a worker can run on the far side of any byte pipe
//! (a child process today, an ssh session tomorrow):
//!
//! * **Job lines** (dispatcher → worker stdin): one line per job,
//!   `spiffi-job/<version> id=… n=… r=… <config fields…>`. The full
//!   [`SystemConfig`] rides along in `key=value` tokens, floats encoded as
//!   IEEE-754 bit patterns in hex so the decoded config is **bit-identical**
//!   to the dispatcher's — the determinism contract survives the pipe.
//! * **Result records** (worker stdout → dispatcher): one JSON object per
//!   line, `{"spiffi_worker":<version>,"job":…,"ok":true,"glitches":…,
//!   "events":…,"wall_nanos":…}` (or `"ok":false,"error":"…"`). JSONL so
//!   the records double as a machine-readable run log.
//! * **Snapshot frames** (dispatcher → worker stdin): one line per warm
//!   base snapshot, `spiffi-snapshot/<version> digest=… base=… repl=…
//!   <snap tokens…>`. The body is the
//!   [`VodSystem::snap_export`](crate::VodSystem::snap_export) token
//!   stream verbatim — floats as IEEE-754 bit patterns — and the digest
//!   (FNV-1a 64 over the body) content-addresses it, so a job's `snap=`
//!   token can reference a frame shipped earlier and the parser detects
//!   any corruption in between.
//!
//! Both parsers reject version-mismatched, truncated, or malformed input
//! with a typed [`WireError`] — never a panic — because worker output is
//! untrusted by construction: a worker may be killed mid-line, and the
//! dispatcher's retry policy depends on telling "garbage" from "crash".

use std::fmt;

use spiffi_bufferpool::PolicyKind;
use spiffi_layout::Placement;
use spiffi_mpeg::AccessPattern;
use spiffi_prefetch::PrefetchKind;
use spiffi_sched::SchedulerKind;
use spiffi_simcore::SimDuration;

use crate::config::{InitialPosition, PauseConfig, SystemConfig};

/// Protocol version; bumped whenever a record's shape changes. A
/// dispatcher and worker must agree exactly — there is no negotiation,
/// because both halves ship in one binary's workspace. v2 added the
/// `base=` job token carrying the marginal-probe base count; v3 added the
/// `spiffi-snapshot` state frame and the job line's optional `snap=`
/// digest token referencing it; v4 added the job line's optional `telem=`
/// sample-interval token and the `spiffi-telemetry` frame a worker
/// streams back (samples, phase spans, and a journal delta per job,
/// digest-framed like snapshots).
pub const PROTO_VERSION: u32 = 4;

/// One probe-replication job: simulate `config` at `terminals` terminals,
/// replication `replication` (the worker derives the replication seed from
/// the config's base seed, exactly like the in-process engine).
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Dispatcher-assigned job id, echoed in the result record.
    pub id: u64,
    /// Terminal count to probe.
    pub terminals: u32,
    /// Replication index within the probe.
    pub replication: u32,
    /// Marginal-probe base count: `Some(b)` selects
    /// [`VodSystem::with_library_marginal`](crate::VodSystem::with_library_marginal)
    /// timing with base `b`, `None` the legacy full-stagger build. Must
    /// match the dispatcher's snapshot mode or outcomes would silently
    /// diverge from the in-process engine's.
    pub base: Option<u32>,
    /// Digest of a previously shipped [`SnapshotRecord`] the worker should
    /// fork from instead of rebuilding the base prefix from scratch.
    /// `None` (and any job whose digest the worker has not seen) builds
    /// from scratch — the outcome is bit-identical either way, so the
    /// token is an optimization hint, never a correctness requirement.
    pub snapshot: Option<u64>,
    /// Telemetry request: `Some(interval_ns)` asks the worker to run the
    /// job under a real probe, sampling at this interval, and stream a
    /// `spiffi-telemetry` frame back before the result line. `None` (the
    /// default) keeps the zero-cost `NoopProbe` path. Probes are
    /// observation-only, so the job's outcome is bit-identical either
    /// way.
    pub telemetry: Option<u64>,
    /// Full system configuration (base seed included).
    pub config: SystemConfig,
}

/// One parsed snapshot frame: a content digest, the base population and
/// replication index the snapshot was captured at, and the raw snap-token
/// body (borrowed from the line — snapshot bodies are large).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotRecord<'a> {
    /// FNV-1a 64 digest of `body`, verified by [`parse_snapshot`].
    pub digest: u64,
    /// Base terminal population the snapshot was captured at.
    pub base: u32,
    /// Replication index whose seed the snapshot was built under.
    pub replication: u32,
    /// The [`VodSystem::snap_export`](crate::VodSystem::snap_export)
    /// token stream, verbatim.
    pub body: &'a str,
}

/// What a worker measured for one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Glitches measured before the run stopped (0 = clean window).
    pub glitches: u64,
    /// Simulation events processed.
    pub events: u64,
    /// Worker-side wall clock spent simulating, nanoseconds.
    pub wall_nanos: u64,
}

/// One result record: a job id plus either a measured outcome or the
/// worker's error message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultRecord {
    /// The job this result answers.
    pub id: u64,
    /// Measured outcome, or the worker-side failure description.
    pub outcome: Result<WorkerOutcome, String>,
}

/// Why a wire record failed to parse. Every variant is a protocol error
/// the dispatcher handles by policy (retry, respawn, quarantine) — none
/// should ever abort the search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The record declares a protocol version this build does not speak.
    Version {
        /// Version the record declared.
        got: u32,
        /// Version this build speaks ([`PROTO_VERSION`]).
        want: u32,
    },
    /// The record is not of the expected kind at all (wrong prefix — e.g.
    /// a stray diagnostic line on the worker's stdout).
    UnknownRecord,
    /// The record ends mid-field (a worker killed while writing).
    Truncated,
    /// A required field is absent.
    MissingField(&'static str),
    /// A field's value failed to parse.
    BadValue {
        /// Which field.
        field: &'static str,
        /// The offending text (truncated for display).
        value: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Version { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: record v{got}, this build v{want}"
                )
            }
            WireError::UnknownRecord => write!(f, "not a recognized wire record"),
            WireError::Truncated => write!(f, "record truncated mid-field"),
            WireError::MissingField(k) => write!(f, "missing field `{k}`"),
            WireError::BadValue { field, value } => {
                write!(f, "bad value for `{field}`: {value:?}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn enc_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn dec_f64(field: &'static str, s: &str) -> Result<f64, WireError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| bad(field, s))
}

fn bad(field: &'static str, value: &str) -> WireError {
    let mut value: String = value.chars().take(40).collect();
    if value.is_empty() {
        value.push_str("<empty>");
    }
    WireError::BadValue { field, value }
}

/// FNV-1a 64: the content digest for snapshot frames. Chosen for being
/// four lines of dependency-free code with good avalanche on text — the
/// digest guards against truncation and byte corruption on a local pipe,
/// not against an adversary.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content digest a snapshot body will carry on the wire — what a
/// job's `snap=` token references.
pub fn snapshot_digest(body: &str) -> u64 {
    fnv1a64(body.as_bytes())
}

/// Encode a snapshot frame as one protocol line (no trailing newline).
/// `body` is the [`VodSystem::snap_export`](crate::VodSystem::snap_export)
/// token stream; the digest is computed here so an encoded frame always
/// verifies.
pub fn encode_snapshot(base: u32, replication: u32, body: &str) -> String {
    format!(
        "spiffi-snapshot/{PROTO_VERSION} digest={:016x} base={base} repl={replication} {body}",
        snapshot_digest(body)
    )
}

/// Split `key=value ` off the front of a snapshot-frame header, returning
/// `(value, rest)`. Header fields are single-space separated by
/// construction ([`encode_snapshot`]); a missing key is
/// [`WireError::MissingField`], a missing separator (line cut inside the
/// header) is [`WireError::Truncated`].
fn take_kv<'a>(rest: &'a str, key: &'static str) -> Result<(&'a str, &'a str), WireError> {
    let rest = rest
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or(WireError::MissingField(key))?;
    rest.split_once(' ').ok_or(WireError::Truncated)
}

/// Parse one snapshot frame, verifying the digest over the body. A digest
/// mismatch — a frame truncated or corrupted anywhere in its (large) body
/// — is `BadValue{field:"digest"}`, so the worker falls back to building
/// from scratch instead of importing corrupt state.
pub fn parse_snapshot(line: &str) -> Result<SnapshotRecord<'_>, WireError> {
    let line = line.trim_end_matches(['\r', '\n']);
    let rest = line
        .strip_prefix("spiffi-snapshot/")
        .ok_or(WireError::UnknownRecord)?;
    let (version, rest) = rest.split_once(' ').ok_or(WireError::Truncated)?;
    let got: u32 = version.parse().map_err(|_| bad("version", version))?;
    if got != PROTO_VERSION {
        return Err(WireError::Version {
            got,
            want: PROTO_VERSION,
        });
    }
    let (d, rest) = take_kv(rest, "digest")?;
    let digest = u64::from_str_radix(d, 16).map_err(|_| bad("digest", d))?;
    let (b, rest) = take_kv(rest, "base")?;
    let base = b.parse().map_err(|_| bad("base", b))?;
    let (r, body) = take_kv(rest, "repl")?;
    let replication = r.parse().map_err(|_| bad("repl", r))?;
    if snapshot_digest(body) != digest {
        return Err(bad("digest", d));
    }
    Ok(SnapshotRecord {
        digest,
        base,
        replication,
        body,
    })
}

/// Encode a job as one protocol line (no trailing newline).
pub fn encode_job(job: &JobRecord) -> String {
    use std::fmt::Write as _;
    let c = &job.config;
    let mut s = format!(
        "spiffi-job/{PROTO_VERSION} id={} n={} r={} base={}",
        job.id,
        job.terminals,
        job.replication,
        match job.base {
            None => "none".to_string(),
            Some(b) => b.to_string(),
        },
    );
    let _ = write!(
        s,
        " nodes={} disks={} videos={} brate={} fps={} vdur={}",
        c.topology.nodes,
        c.topology.disks_per_node,
        c.n_videos,
        c.video.bit_rate_bps,
        c.video.fps,
        c.video.duration.0,
    );
    let _ = write!(
        s,
        " access={} place={} stripe={} smem={} tmem={} terms={}",
        match c.access {
            AccessPattern::Uniform => "uniform".to_string(),
            AccessPattern::Zipf(z) => format!("zipf:{}", enc_f64(z)),
        },
        match c.placement {
            Placement::Striped => "striped".to_string(),
            Placement::NonStriped => "nonstriped".to_string(),
            Placement::StripeGroup { width } => format!("group:{width}"),
        },
        c.stripe_bytes,
        c.server_memory_bytes,
        c.terminal_memory_bytes,
        c.n_terminals,
    );
    let _ = write!(
        s,
        " sched={} policy={} pf={}",
        match c.scheduler {
            SchedulerKind::Fcfs => "fcfs".to_string(),
            SchedulerKind::Edf => "edf".to_string(),
            SchedulerKind::Elevator => "elevator".to_string(),
            SchedulerKind::RoundRobin => "rr".to_string(),
            SchedulerKind::Gss { groups } => format!("gss:{groups}"),
            SchedulerKind::RealTime { classes, spacing } => {
                format!("rt:{classes}:{}", spacing.0)
            }
        },
        match c.policy {
            PolicyKind::GlobalLru => "lru",
            PolicyKind::LovePrefetch => "love",
        },
        match c.prefetch {
            PrefetchKind::Off => "off".to_string(),
            PrefetchKind::Standard { processes } => format!("std:{processes}"),
            PrefetchKind::RealTime { processes } => format!("rt:{processes}"),
            PrefetchKind::Delayed {
                processes,
                max_advance,
            } => format!("delayed:{processes}:{}", max_advance.0),
        },
    );
    let _ = write!(
        s,
        " dseek={} dsettle={} drot={} dxfer={} dcylb={} dctxs={} dctxb={} dncyl={}",
        enc_f64(c.disk.seek_factor_ms),
        c.disk.settle.0,
        c.disk.rotation.0,
        enc_f64(c.disk.transfer_bytes_per_sec),
        c.disk.cylinder_bytes,
        c.disk.cache_contexts,
        c.disk.context_bytes,
        c.disk.num_cylinders,
    );
    let _ = write!(
        s,
        " mips={} cio={} csend={} crecv={} netd={} netb={}",
        enc_f64(c.cpu.mips),
        c.cpu.start_io_instr,
        c.cpu.send_msg_instr,
        c.cpu.recv_msg_instr,
        c.net.base_delay.0,
        enc_f64(c.net.ns_per_byte),
    );
    let _ = write!(
        s,
        " pause={} piggy={} speedup={} ipos={} stagger={} warmup={} measure={} seed={}",
        match c.pause {
            None => "none".to_string(),
            Some(p) => format!("{}:{}", enc_f64(p.mean_pauses_per_video), p.mean_duration.0),
        },
        match c.piggyback_delay {
            None => "none".to_string(),
            Some(d) => d.0.to_string(),
        },
        match c.search_speedup {
            None => "none".to_string(),
            Some(v) => v.to_string(),
        },
        match c.initial_position {
            InitialPosition::Start => "start",
            InitialPosition::UniformWithinVideo => "uniform",
        },
        c.timing.stagger.0,
        c.timing.warmup.0,
        c.timing.measure.0,
        c.seed,
    );
    if let Some(digest) = job.snapshot {
        let _ = write!(s, " snap={digest:016x}");
    }
    if let Some(interval_ns) = job.telemetry {
        let _ = write!(s, " telem={interval_ns}");
    }
    if let Some(scenario) = &c.scenario {
        let _ = write!(s, " scn={}", scenario.encode_wire());
    }
    s
}

/// The `key=value` tokens of a job line, with version and kind checked.
struct Fields<'a> {
    tokens: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn of(line: &'a str) -> Result<Fields<'a>, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let mut parts = line.split_ascii_whitespace();
        let head = parts.next().ok_or(WireError::UnknownRecord)?;
        let version = head
            .strip_prefix("spiffi-job/")
            .ok_or(WireError::UnknownRecord)?;
        let got: u32 = version.parse().map_err(|_| bad("version", version))?;
        if got != PROTO_VERSION {
            return Err(WireError::Version {
                got,
                want: PROTO_VERSION,
            });
        }
        let mut tokens = Vec::new();
        for tok in parts {
            let (k, v) = tok.split_once('=').ok_or(WireError::Truncated)?;
            tokens.push((k, v));
        }
        Ok(Fields { tokens })
    }

    fn raw(&self, key: &'static str) -> Result<&'a str, WireError> {
        self.opt(key).ok_or(WireError::MissingField(key))
    }

    fn opt(&self, key: &'static str) -> Option<&'a str> {
        self.tokens.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    fn num<T: std::str::FromStr>(&self, key: &'static str) -> Result<T, WireError> {
        let raw = self.raw(key)?;
        raw.parse().map_err(|_| bad(key, raw))
    }

    fn dur(&self, key: &'static str) -> Result<SimDuration, WireError> {
        Ok(SimDuration(self.num(key)?))
    }

    fn f64(&self, key: &'static str) -> Result<f64, WireError> {
        dec_f64(key, self.raw(key)?)
    }
}

/// Parse one job line. Rejects wrong-version, truncated, and malformed
/// lines with a typed [`WireError`].
pub fn parse_job(line: &str) -> Result<JobRecord, WireError> {
    let f = Fields::of(line)?;
    let access = {
        let raw = f.raw("access")?;
        match raw.split_once(':') {
            None if raw == "uniform" => AccessPattern::Uniform,
            Some(("zipf", z)) => AccessPattern::Zipf(dec_f64("access", z)?),
            _ => return Err(bad("access", raw)),
        }
    };
    let placement = {
        let raw = f.raw("place")?;
        match raw.split_once(':') {
            None if raw == "striped" => Placement::Striped,
            None if raw == "nonstriped" => Placement::NonStriped,
            Some(("group", w)) => Placement::StripeGroup {
                width: w.parse().map_err(|_| bad("place", raw))?,
            },
            _ => return Err(bad("place", raw)),
        }
    };
    let scheduler = {
        let raw = f.raw("sched")?;
        let mut it = raw.split(':');
        match it.next() {
            Some("fcfs") => SchedulerKind::Fcfs,
            Some("edf") => SchedulerKind::Edf,
            Some("elevator") => SchedulerKind::Elevator,
            Some("rr") => SchedulerKind::RoundRobin,
            Some("gss") => SchedulerKind::Gss {
                groups: it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("sched", raw))?,
            },
            Some("rt") => SchedulerKind::RealTime {
                classes: it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("sched", raw))?,
                spacing: SimDuration(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("sched", raw))?,
                ),
            },
            _ => return Err(bad("sched", raw)),
        }
    };
    let policy = match f.raw("policy")? {
        "lru" => PolicyKind::GlobalLru,
        "love" => PolicyKind::LovePrefetch,
        other => return Err(bad("policy", other)),
    };
    let prefetch = {
        let raw = f.raw("pf")?;
        let mut it = raw.split(':');
        let proc_arg = |it: &mut std::str::Split<'_, char>| {
            it.next()
                .and_then(|v| v.parse::<u32>().ok())
                .ok_or_else(|| bad("pf", raw))
        };
        match it.next() {
            Some("off") => PrefetchKind::Off,
            Some("std") => PrefetchKind::Standard {
                processes: proc_arg(&mut it)?,
            },
            Some("rt") => PrefetchKind::RealTime {
                processes: proc_arg(&mut it)?,
            },
            Some("delayed") => PrefetchKind::Delayed {
                processes: proc_arg(&mut it)?,
                max_advance: SimDuration(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("pf", raw))?,
                ),
            },
            _ => return Err(bad("pf", raw)),
        }
    };
    let pause = {
        let raw = f.raw("pause")?;
        match raw {
            "none" => None,
            _ => {
                let (m, d) = raw.split_once(':').ok_or_else(|| bad("pause", raw))?;
                Some(PauseConfig {
                    mean_pauses_per_video: dec_f64("pause", m)?,
                    mean_duration: SimDuration(d.parse().map_err(|_| bad("pause", raw))?),
                })
            }
        }
    };
    let piggyback_delay = match f.raw("piggy")? {
        "none" => None,
        raw => Some(SimDuration(raw.parse().map_err(|_| bad("piggy", raw))?)),
    };
    let search_speedup = match f.raw("speedup")? {
        "none" => None,
        raw => Some(raw.parse().map_err(|_| bad("speedup", raw))?),
    };
    let initial_position = match f.raw("ipos")? {
        "start" => InitialPosition::Start,
        "uniform" => InitialPosition::UniformWithinVideo,
        other => return Err(bad("ipos", other)),
    };
    // `scn=` is optional like `snap=`/`telem=`: absence means a clean run.
    let scenario = match f.opt("scn") {
        None => None,
        Some(raw) => {
            Some(crate::scenario::Scenario::decode_wire(raw).map_err(|_| bad("scn", raw))?)
        }
    };
    let config = SystemConfig {
        topology: spiffi_layout::Topology {
            nodes: f.num("nodes")?,
            disks_per_node: f.num("disks")?,
        },
        n_videos: f.num("videos")?,
        video: spiffi_mpeg::VideoParams {
            bit_rate_bps: f.num("brate")?,
            fps: f.num("fps")?,
            duration: f.dur("vdur")?,
        },
        access,
        placement,
        stripe_bytes: f.num("stripe")?,
        server_memory_bytes: f.num("smem")?,
        terminal_memory_bytes: f.num("tmem")?,
        n_terminals: f.num("terms")?,
        scheduler,
        policy,
        prefetch,
        disk: spiffi_disk::DiskParams {
            seek_factor_ms: f.f64("dseek")?,
            settle: f.dur("dsettle")?,
            rotation: f.dur("drot")?,
            transfer_bytes_per_sec: f.f64("dxfer")?,
            cylinder_bytes: f.num("dcylb")?,
            cache_contexts: f.num("dctxs")?,
            context_bytes: f.num("dctxb")?,
            num_cylinders: f.num("dncyl")?,
        },
        cpu: spiffi_cpu::CpuParams {
            mips: f.f64("mips")?,
            start_io_instr: f.num("cio")?,
            send_msg_instr: f.num("csend")?,
            recv_msg_instr: f.num("crecv")?,
        },
        net: spiffi_net::NetParams {
            base_delay: f.dur("netd")?,
            ns_per_byte: f.f64("netb")?,
        },
        pause,
        piggyback_delay,
        search_speedup,
        initial_position,
        timing: crate::config::RunTiming {
            stagger: f.dur("stagger")?,
            warmup: f.dur("warmup")?,
            measure: f.dur("measure")?,
        },
        seed: f.num("seed")?,
        scenario,
    };
    let base = match f.raw("base")? {
        "none" => None,
        raw => Some(raw.parse().map_err(|_| bad("base", raw))?),
    };
    // `snap=` and `telem=` are the optional tokens: dispatchers only
    // emit `snap=` for jobs that can fork a shipped snapshot and
    // `telem=` when telemetry was requested; absence means "build from
    // scratch" / "no telemetry" — not a malformed line.
    let snapshot = match f.opt("snap") {
        None => None,
        Some(raw) => Some(u64::from_str_radix(raw, 16).map_err(|_| bad("snap", raw))?),
    };
    let telemetry = match f.opt("telem") {
        None => None,
        Some(raw) => Some(raw.parse().map_err(|_| bad("telem", raw))?),
    };
    Ok(JobRecord {
        id: f.num("id")?,
        terminals: f.num("n")?,
        replication: f.num("r")?,
        base,
        snapshot,
        telemetry,
        config,
    })
}

/// Encode a result as one JSONL record (no trailing newline).
pub fn encode_result(result: &ResultRecord) -> String {
    match &result.outcome {
        Ok(out) => format!(
            "{{\"spiffi_worker\":{PROTO_VERSION},\"job\":{},\"ok\":true,\
             \"glitches\":{},\"events\":{},\"wall_nanos\":{}}}",
            result.id, out.glitches, out.events, out.wall_nanos
        ),
        // The error string is untrusted text (library build failures,
        // panics): escape it with the shared JSON helper so a control
        // character — above all a newline — can never break the line
        // framing or produce unparseable JSON.
        Err(msg) => format!(
            "{{\"spiffi_worker\":{PROTO_VERSION},\"job\":{},\"ok\":false,\"error\":\"{}\"}}",
            result.id,
            spiffi_trace::json::escaped(msg),
        ),
    }
}

/// Extract the numeric value of `"key":<digits>` from a flat JSON object.
fn json_u64(line: &str, key: &'static str) -> Result<u64, WireError> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).ok_or(WireError::MissingField(key))? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .ok_or(WireError::Truncated)?;
    if end == 0 {
        return Err(bad(key, &rest[..rest.len().min(12)]));
    }
    rest[..end].parse().map_err(|_| bad(key, &rest[..end]))
}

/// Parse one worker result record. Rejects wrong-version, truncated, and
/// malformed records with a typed [`WireError`]; a lost closing brace (a
/// worker killed mid-write) is [`WireError::Truncated`].
pub fn parse_result(line: &str) -> Result<ResultRecord, WireError> {
    let line = line.trim();
    if !line.starts_with("{\"spiffi_worker\":") {
        return Err(WireError::UnknownRecord);
    }
    // Checked narrowing: a 64-bit "version" (corrupt output, or a future
    // build whose version outgrew u32) must surface as a typed error, not
    // silently truncate into a version we think we speak.
    let raw_version = json_u64(line, "spiffi_worker")?;
    let got =
        u32::try_from(raw_version).map_err(|_| bad("spiffi_worker", &raw_version.to_string()))?;
    if got != PROTO_VERSION {
        return Err(WireError::Version {
            got,
            want: PROTO_VERSION,
        });
    }
    if !line.ends_with('}') {
        return Err(WireError::Truncated);
    }
    let id = json_u64(line, "job")?;
    let outcome = if line.contains("\"ok\":true") {
        Ok(WorkerOutcome {
            glitches: json_u64(line, "glitches")?,
            events: json_u64(line, "events")?,
            wall_nanos: json_u64(line, "wall_nanos")?,
        })
    } else if line.contains("\"ok\":false") {
        let pat = "\"error\":\"";
        let at = line.find(pat).ok_or(WireError::MissingField("error"))? + pat.len();
        let mut msg = String::new();
        let mut chars = line[at..].chars();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('n') => msg.push('\n'),
                    Some('r') => msg.push('\r'),
                    Some('t') => msg.push('\t'),
                    Some('u') => {
                        let hex: String = chars.by_ref().take(4).collect();
                        if hex.len() < 4 {
                            return Err(WireError::Truncated);
                        }
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| bad("error", &hex))?;
                        msg.push(char::from_u32(code).ok_or_else(|| bad("error", &hex))?);
                    }
                    Some(c) => msg.push(c),
                    None => return Err(WireError::Truncated),
                },
                Some('"') => break,
                Some(c) => msg.push(c),
                None => return Err(WireError::Truncated),
            }
        }
        Err(msg)
    } else {
        return Err(WireError::MissingField("ok"));
    };
    Ok(ResultRecord { id, outcome })
}

/// A coarse execution phase of a worker job, in simulation time.
/// `wall_nanos` carries the measured wall-clock cost where one exists
/// (import/fork/simulate) and 0 for purely simulated phases
/// (warmup/measure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetrySpan {
    /// Stable phase label; one of [`PHASE_LABELS`].
    pub label: &'static str,
    /// Phase start, simulation nanoseconds.
    pub sim_start: u64,
    /// Phase end, simulation nanoseconds (equal to `sim_start` for
    /// point-in-time phases like a snapshot import).
    pub sim_end: u64,
    /// Measured wall-clock cost, nanoseconds.
    pub wall_nanos: u64,
}

/// The phase labels a [`TelemetrySpan`] may carry, in canonical order.
pub const PHASE_LABELS: [&str; 5] = ["warmup", "import", "fork", "simulate", "measure"];

fn phase_label(raw: &str) -> Option<&'static str> {
    PHASE_LABELS.iter().find(|&&l| l == raw).copied()
}

/// One fixed-interval probe sample, the wire form of a trace
/// `SampleRow`. Utilizations ride as IEEE-754 bit patterns so the
/// dispatcher reassembles bit-identical rows.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySample {
    /// End of the sampled interval, simulation nanoseconds.
    pub t_ns: u64,
    /// Bytes on the wire during the interval.
    pub net_bytes: u64,
    /// Buffer-pool frames in use at interval end.
    pub pool_in_use: u64,
    /// Demand I/Os in flight at interval end.
    pub outstanding_deadlines: u64,
    /// Per-disk utilization over the interval.
    pub disk_util: Vec<f64>,
}

/// The per-job journal delta a telemetry frame carries: counters the
/// dispatcher folds into the search-wide `RunJournal`, plus the worker's
/// own report utilization for cross-checking the shipped samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TelemetryDelta {
    /// Glitches the job measured (0 = clean window).
    pub glitches: u64,
    /// Simulation events processed.
    pub events: u64,
    /// Wall clock spent importing the referenced snapshot (0 when cached
    /// or built from scratch).
    pub import_wall_nanos: u64,
    /// Wall clock spent forking the imported base (0 when built from
    /// scratch).
    pub fork_wall_nanos: u64,
    /// Wall clock spent simulating.
    pub simulate_wall_nanos: u64,
    /// Whether the job resolved by forking a shipped snapshot.
    pub forked: bool,
    /// The worker's `RunReport::avg_disk_utilization`.
    pub avg_disk_utilization: f64,
}

/// One parsed telemetry frame: everything a worker observed running one
/// job under a real probe.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryRecord {
    /// The job this frame describes (the result line follows it).
    pub job: u64,
    /// The sampler interval the worker ran with, nanoseconds.
    pub interval_ns: u64,
    /// Journal delta.
    pub delta: TelemetryDelta,
    /// Coarse phase spans.
    pub spans: Vec<TelemetrySpan>,
    /// Fixed-interval samples, in time order.
    pub samples: Vec<TelemetrySample>,
}

fn telemetry_body(rec: &TelemetryRecord) -> String {
    use std::fmt::Write as _;
    let d = &rec.delta;
    let mut s = format!(
        "iv={} gl={} ev={} iw={} fw={} sw={} fk={} du={}",
        rec.interval_ns,
        d.glitches,
        d.events,
        d.import_wall_nanos,
        d.fork_wall_nanos,
        d.simulate_wall_nanos,
        d.forked as u8,
        enc_f64(d.avg_disk_utilization),
    );
    let _ = write!(s, " ns={}", rec.spans.len());
    for (i, sp) in rec.spans.iter().enumerate() {
        let _ = write!(
            s,
            " s{i}={}:{}:{}:{}",
            sp.label, sp.sim_start, sp.sim_end, sp.wall_nanos
        );
    }
    let _ = write!(s, " nr={}", rec.samples.len());
    for (i, r) in rec.samples.iter().enumerate() {
        let _ = write!(
            s,
            " r{i}={}:{}:{}:{}:",
            r.t_ns, r.net_bytes, r.pool_in_use, r.outstanding_deadlines
        );
        for (j, u) in r.disk_util.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{:016x}", u.to_bits());
        }
    }
    s
}

/// Encode a telemetry frame as one protocol line (no trailing newline).
/// Digest-framed like snapshots: the FNV-1a 64 digest over the body is
/// computed here, so an encoded frame always verifies.
pub fn encode_telemetry(rec: &TelemetryRecord) -> String {
    let body = telemetry_body(rec);
    format!(
        "spiffi-telemetry/{PROTO_VERSION} digest={:016x} job={} {body}",
        snapshot_digest(&body),
        rec.job,
    )
}

/// Parse one telemetry frame, verifying the digest over the body first —
/// a frame truncated or corrupted anywhere is `BadValue{field:"digest"}`
/// before any field is interpreted. Telemetry is observability, never
/// correctness: the dispatcher drops bad frames (counted) and the search
/// proceeds on the result line alone.
pub fn parse_telemetry(line: &str) -> Result<TelemetryRecord, WireError> {
    let line = line.trim_end_matches(['\r', '\n']);
    let rest = line
        .strip_prefix("spiffi-telemetry/")
        .ok_or(WireError::UnknownRecord)?;
    let (version, rest) = rest.split_once(' ').ok_or(WireError::Truncated)?;
    let got: u32 = version.parse().map_err(|_| bad("version", version))?;
    if got != PROTO_VERSION {
        return Err(WireError::Version {
            got,
            want: PROTO_VERSION,
        });
    }
    let (d, rest) = take_kv(rest, "digest")?;
    let digest = u64::from_str_radix(d, 16).map_err(|_| bad("digest", d))?;
    let (j, body) = take_kv(rest, "job")?;
    let job = j.parse().map_err(|_| bad("job", j))?;
    if snapshot_digest(body) != digest {
        return Err(bad("digest", d));
    }

    let mut tokens = Vec::new();
    for tok in body.split_ascii_whitespace() {
        let (k, v) = tok.split_once('=').ok_or(WireError::Truncated)?;
        tokens.push((k, v));
    }
    let raw = |key: &'static str| -> Result<&str, WireError> {
        tokens
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .ok_or(WireError::MissingField(key))
    };
    let num = |key: &'static str| -> Result<u64, WireError> {
        let v = raw(key)?;
        v.parse().map_err(|_| bad(key, v))
    };
    let indexed = |prefix: char, i: usize, field: &'static str| -> Result<&str, WireError> {
        let want = format!("{prefix}{i}");
        tokens
            .iter()
            .find(|(k, _)| *k == want)
            .map(|&(_, v)| v)
            .ok_or(WireError::MissingField(field))
    };

    let interval_ns = num("iv")?;
    let forked = match raw("fk")? {
        "0" => false,
        "1" => true,
        other => return Err(bad("fk", other)),
    };
    let delta = TelemetryDelta {
        glitches: num("gl")?,
        events: num("ev")?,
        import_wall_nanos: num("iw")?,
        fork_wall_nanos: num("fw")?,
        simulate_wall_nanos: num("sw")?,
        forked,
        avg_disk_utilization: dec_f64("du", raw("du")?)?,
    };

    let n_spans = num("ns")? as usize;
    let mut spans = Vec::with_capacity(n_spans.min(64));
    for i in 0..n_spans {
        let v = indexed('s', i, "span")?;
        let mut it = v.split(':');
        let mut part = || it.next().ok_or(WireError::Truncated);
        let label = phase_label(part()?).ok_or_else(|| bad("span", v))?;
        let parse_u64 = |s: &str| s.parse::<u64>().map_err(|_| bad("span", s));
        spans.push(TelemetrySpan {
            label,
            sim_start: parse_u64(part()?)?,
            sim_end: parse_u64(part()?)?,
            wall_nanos: parse_u64(part()?)?,
        });
    }

    let n_rows = num("nr")? as usize;
    let mut samples = Vec::with_capacity(n_rows.min(4096));
    for i in 0..n_rows {
        let v = indexed('r', i, "sample")?;
        let mut it = v.splitn(5, ':');
        let mut part = || it.next().ok_or(WireError::Truncated);
        let parse_u64 = |s: &str| s.parse::<u64>().map_err(|_| bad("sample", s));
        let t_ns = parse_u64(part()?)?;
        let net_bytes = parse_u64(part()?)?;
        let pool_in_use = parse_u64(part()?)?;
        let outstanding_deadlines = parse_u64(part()?)?;
        let utils = part()?;
        let mut disk_util = Vec::new();
        if !utils.is_empty() {
            for h in utils.split(',') {
                disk_util.push(dec_f64("sample", h)?);
            }
        }
        samples.push(TelemetrySample {
            t_ns,
            net_bytes,
            pool_in_use,
            outstanding_deadlines,
            disk_util,
        });
    }

    Ok(TelemetryRecord {
        job,
        interval_ns,
        delta,
        spans,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ProbeCache;

    fn job(cfg: SystemConfig) -> JobRecord {
        JobRecord {
            id: 42,
            terminals: 24,
            replication: 1,
            base: None,
            snapshot: None,
            telemetry: None,
            config: cfg,
        }
    }

    fn telemetry_record() -> TelemetryRecord {
        TelemetryRecord {
            job: 42,
            interval_ns: 1_000_000_000,
            delta: TelemetryDelta {
                glitches: 1,
                events: 123_456,
                import_wall_nanos: 2_000,
                fork_wall_nanos: 3_000,
                simulate_wall_nanos: 400_000,
                forked: true,
                avg_disk_utilization: 0.253_847_261,
            },
            spans: vec![
                TelemetrySpan {
                    label: "warmup",
                    sim_start: 0,
                    sim_end: 15_000_000_000,
                    wall_nanos: 0,
                },
                TelemetrySpan {
                    label: "import",
                    sim_start: 10_000_000_000,
                    sim_end: 10_000_000_000,
                    wall_nanos: 2_000,
                },
                TelemetrySpan {
                    label: "simulate",
                    sim_start: 10_000_000_000,
                    sim_end: 45_000_000_000,
                    wall_nanos: 400_000,
                },
            ],
            samples: vec![
                TelemetrySample {
                    t_ns: 1_000_000_000,
                    net_bytes: 4_096,
                    pool_in_use: 7,
                    outstanding_deadlines: 2,
                    disk_util: vec![0.25, f64::MIN_POSITIVE, 1.0 - 1e-12],
                },
                TelemetrySample {
                    t_ns: 2_000_000_000,
                    net_bytes: 0,
                    pool_in_use: 0,
                    outstanding_deadlines: 0,
                    disk_util: vec![0.0, 0.5, f64::from_bits(0.5f64.to_bits() + 1)],
                },
            ],
        }
    }

    #[test]
    fn job_round_trips_bit_identically() {
        // Exercise every enum arm and optional field the config can carry.
        let mut exotic = SystemConfig::paper_base();
        exotic.access = AccessPattern::Zipf(0.271828);
        exotic.placement = Placement::StripeGroup { width: 4 };
        exotic.scheduler = SchedulerKind::RealTime {
            classes: 3,
            spacing: SimDuration::from_secs(4),
        };
        exotic.prefetch = PrefetchKind::Delayed {
            processes: 2,
            max_advance: SimDuration::from_secs(8),
        };
        exotic.pause = Some(PauseConfig::default());
        exotic.piggyback_delay = Some(SimDuration::from_secs(300));
        exotic.search_speedup = Some(10);
        for cfg in [
            SystemConfig::small_test(),
            SystemConfig::paper_base(),
            exotic,
        ] {
            for base in [None, Some(20u32)] {
                let mut sent = job(cfg.clone());
                sent.base = base;
                let got = parse_job(&encode_job(&sent)).expect("round trip");
                assert_eq!(got.base, base);
            }
            for snapshot in [
                None,
                Some(0u64),
                Some(u64::MAX),
                Some(0x00ab_cdef_0123_4567),
            ] {
                let mut sent = job(cfg.clone());
                sent.base = Some(20);
                sent.snapshot = snapshot;
                let got = parse_job(&encode_job(&sent)).expect("round trip");
                assert_eq!(got.snapshot, snapshot, "snap token drifted");
            }
            for telemetry in [None, Some(1u64), Some(1_000_000_000), Some(u64::MAX)] {
                let mut sent = job(cfg.clone());
                sent.telemetry = telemetry;
                let got = parse_job(&encode_job(&sent)).expect("round trip");
                assert_eq!(got.telemetry, telemetry, "telem token drifted");
            }
            for scenario in [
                None,
                Some(crate::scenario::Scenario::default()),
                Some(crate::scenario::Scenario {
                    faults: vec![
                        crate::scenario::FaultSpec::DiskDeath {
                            node: 0,
                            disk: 1,
                            at: SimDuration::from_secs(20),
                        },
                        crate::scenario::FaultSpec::DiskDegrade {
                            node: 1,
                            disk: 0,
                            at: SimDuration::from_secs(5),
                            dur: SimDuration::from_secs(10),
                            factor_pct: 200,
                        },
                        crate::scenario::FaultSpec::AbandonBurst {
                            at: SimDuration::from_secs(25),
                            every: 3,
                        },
                    ],
                    mix: Some(crate::scenario::BitrateMix {
                        every: 4,
                        bit_rate_bps: 15_000_000,
                    }),
                }),
            ] {
                let mut sent = job(cfg.clone());
                sent.config.scenario = scenario.clone();
                let got = parse_job(&encode_job(&sent)).expect("round trip");
                assert_eq!(got.config.scenario, scenario, "scn token drifted");
            }
            let sent = job(cfg);
            let got = parse_job(&encode_job(&sent)).expect("round trip");
            assert_eq!(got.id, 42);
            assert_eq!(got.terminals, 24);
            assert_eq!(got.replication, 1);
            // The probe fingerprint renders every field but n_terminals;
            // equal fingerprints mean the decoded config is bit-identical
            // as a probe input.
            assert_eq!(
                ProbeCache::fingerprint(&got.config),
                ProbeCache::fingerprint(&sent.config),
                "config drifted across the wire"
            );
            assert_eq!(got.config.n_terminals, sent.config.n_terminals);
        }
    }

    #[test]
    fn job_parser_rejects_garbage_with_typed_errors() {
        // SystemConfig has no PartialEq, so compare the errors alone.
        let err = |line: &str| parse_job(line).expect_err("parse should fail");
        assert_eq!(err(""), WireError::UnknownRecord);
        assert_eq!(err("hello world"), WireError::UnknownRecord);
        assert_eq!(
            err("spiffi-job/999 id=1 n=2 r=0"),
            WireError::Version {
                got: 999,
                want: PROTO_VERSION
            }
        );
        // A token without `=` means the line was cut mid-token.
        assert_eq!(err("spiffi-job/4 id=1 n=2 r=0 nod"), WireError::Truncated);
        // A structurally fine line missing a config field.
        assert_eq!(
            err("spiffi-job/4 id=1 n=2 r=0"),
            WireError::MissingField("access")
        );
        // A field with an unparseable value.
        let good = encode_job(&job(SystemConfig::small_test()));
        let mangled = good.replace("seed=", "seed=xyz_");
        assert!(matches!(
            parse_job(&mangled),
            Err(WireError::BadValue { field: "seed", .. })
        ));
        // An unknown enum tag.
        let mangled = good.replace("sched=", "sched=quantum_");
        assert!(matches!(
            parse_job(&mangled),
            Err(WireError::BadValue { field: "sched", .. })
        ));
        // A non-hex snap digest.
        let mut with_snap = job(SystemConfig::small_test());
        with_snap.snapshot = Some(7);
        let good = encode_job(&with_snap);
        let mangled = good.replace("snap=", "snap=zz_");
        assert!(matches!(
            parse_job(&mangled),
            Err(WireError::BadValue { field: "snap", .. })
        ));
        // A corrupt scenario token.
        let mut with_scn = job(SystemConfig::small_test());
        with_scn.config.scenario = Some(crate::scenario::Scenario {
            faults: vec![crate::scenario::FaultSpec::DiskDeath {
                node: 0,
                disk: 1,
                at: SimDuration::from_secs(20),
            }],
            mix: None,
        });
        let good = encode_job(&with_scn);
        let mangled = good.replace("scn=k,", "scn=q,");
        assert!(matches!(
            parse_job(&mangled),
            Err(WireError::BadValue { field: "scn", .. })
        ));
    }

    /// Satellite coverage: adversarial configs at the edges of their
    /// domains must round-trip bit-identically, and truncated or mangled
    /// lines must come back as typed errors — never a panic, never a
    /// silently wrong record.
    #[test]
    fn job_round_trips_adversarial_configs_and_survives_truncation() {
        let mut cases = Vec::new();
        // Zipf exponents hugging both ends of (0, 1): the f64 hex encoding
        // must carry every bit.
        let just_above_half = f64::from_bits(0.5f64.to_bits() + 1);
        for z in [1e-12, 1.0 - 1e-12, just_above_half, f64::MIN_POSITIVE] {
            let mut c = SystemConfig::small_test();
            c.access = AccessPattern::Zipf(z);
            cases.push(c);
        }
        // Extreme stripe sizes and populations. These configs need not
        // validate — the wire layer round-trips what it is given; the
        // worker validates before simulating.
        let mut c = SystemConfig::small_test();
        c.stripe_bytes = 1;
        c.n_terminals = u32::MAX;
        cases.push(c);
        let mut c = SystemConfig::small_test();
        c.stripe_bytes = u64::MAX;
        c.server_memory_bytes = u64::MAX;
        c.seed = u64::MAX;
        cases.push(c);
        for cfg in cases {
            let mut sent = job(cfg);
            sent.id = u64::MAX;
            sent.terminals = u32::MAX;
            sent.replication = u32::MAX;
            sent.base = Some(u32::MAX);
            sent.snapshot = Some(u64::MAX);
            sent.telemetry = Some(u64::MAX);
            let line = encode_job(&sent);
            let got = parse_job(&line).expect("adversarial round trip");
            assert_eq!(got.id, sent.id);
            assert_eq!(got.terminals, sent.terminals);
            assert_eq!(got.replication, sent.replication);
            assert_eq!(got.base, sent.base);
            assert_eq!(got.snapshot, sent.snapshot);
            assert_eq!(got.telemetry, sent.telemetry);
            assert_eq!(
                ProbeCache::fingerprint(&got.config),
                ProbeCache::fingerprint(&sent.config),
                "adversarial config drifted across the wire"
            );
            assert_eq!(got.config.n_terminals, sent.config.n_terminals);
            // Every prefix must parse without panicking (job lines are
            // ASCII, so every byte offset is a char boundary). A prefix
            // that happens to cut inside a trailing numeric value can
            // still parse — the job framing is newline-delimited, so a
            // short read never reaches the parser in practice — but it
            // must never panic or loop.
            for cut in 0..line.len() {
                let _ = parse_job(&line[..cut]);
            }
        }
    }

    #[test]
    fn snapshot_frame_round_trips_and_verifies_its_digest() {
        // A body shaped like real snap tokens: space-joined key=value.
        let body = "cn=1234 cq=9 ct=42 ce=1 et=99 es=3 ek=1 ev=7 ew=2";
        let line = encode_snapshot(14, 3, body);
        let rec = parse_snapshot(&line).expect("round trip");
        assert_eq!(rec.base, 14);
        assert_eq!(rec.replication, 3);
        assert_eq!(rec.body, body);
        assert_eq!(rec.digest, snapshot_digest(body));
        // Re-encoding the parsed record reproduces the line byte for byte.
        assert_eq!(encode_snapshot(rec.base, rec.replication, rec.body), line);
        // The digest is over the exact bytes: a one-character body edit
        // must be caught.
        let corrupt = line.replace("ev=7", "ev=8");
        assert!(matches!(
            parse_snapshot(&corrupt),
            Err(WireError::BadValue {
                field: "digest",
                ..
            })
        ));
    }

    #[test]
    fn snapshot_parser_rejects_garbage_with_typed_errors() {
        let err = |line: &str| parse_snapshot(line).expect_err("parse should fail");
        assert_eq!(err(""), WireError::UnknownRecord);
        assert_eq!(err("spiffi-job/4 id=1"), WireError::UnknownRecord);
        assert_eq!(
            err("spiffi-snapshot/999 digest=0 base=1 repl=0 x=1"),
            WireError::Version {
                got: 999,
                want: PROTO_VERSION
            }
        );
        assert!(matches!(
            err("spiffi-snapshot/4 digest=nothex base=1 repl=0 x=1"),
            WireError::BadValue {
                field: "digest",
                ..
            }
        ));
        assert_eq!(
            err("spiffi-snapshot/4 base=1 repl=0 x=1"),
            WireError::MissingField("digest")
        );
        // Every truncation of a valid frame errors: header cuts read as
        // Truncated/MissingField, body cuts break the digest. (The frame
        // is ASCII, so every byte offset is a char boundary.)
        let line = encode_snapshot(20, 0, "aa=1 bb=2 cc=3");
        for cut in 0..line.len() {
            assert!(
                parse_snapshot(&line[..cut]).is_err(),
                "a {cut}-byte prefix must not parse as a valid frame"
            );
        }
    }

    #[test]
    fn result_round_trips() {
        let ok = ResultRecord {
            id: 7,
            outcome: Ok(WorkerOutcome {
                glitches: 0,
                events: 123_456,
                wall_nanos: 9_876_543,
            }),
        };
        assert_eq!(parse_result(&encode_result(&ok)), Ok(ok.clone()));
        let err = ResultRecord {
            id: 8,
            outcome: Err("library \"x\" \\ exploded".into()),
        };
        assert_eq!(parse_result(&encode_result(&err)), Ok(err));
    }

    /// Regression (satellite audit): a control character in a worker
    /// error message used to pass through `encode_result` raw — a newline
    /// broke the line framing, splitting one record into two garbage
    /// lines. The shared JSON escape helper must keep the record on one
    /// line and round-trip the message exactly.
    #[test]
    fn result_error_with_control_chars_stays_one_line_and_round_trips() {
        let nasty = "thread panicked:\nstack\ttrace \"here\"\r\u{1}\\done";
        let rec = ResultRecord {
            id: 9,
            outcome: Err(nasty.into()),
        };
        let line = encode_result(&rec);
        assert!(!line.contains('\n'), "framing broken by raw newline");
        assert!(!line.bytes().any(|b| b < 0x20));
        assert_eq!(parse_result(&line), Ok(rec));
    }

    #[test]
    fn result_parser_rejects_garbage_with_typed_errors() {
        assert_eq!(parse_result(""), Err(WireError::UnknownRecord));
        assert_eq!(parse_result("panic: oh no"), Err(WireError::UnknownRecord));
        assert_eq!(
            parse_result("{\"spiffi_worker\":999,\"job\":1,\"ok\":true}"),
            Err(WireError::Version {
                got: 999,
                want: PROTO_VERSION
            })
        );
        // Killed mid-write: no closing brace.
        let full = encode_result(&ResultRecord {
            id: 3,
            outcome: Ok(WorkerOutcome {
                glitches: 1,
                events: 10,
                wall_nanos: 20,
            }),
        });
        for cut in [full.len() - 1, full.len() - 8, 20] {
            assert_eq!(
                parse_result(&full[..cut]),
                Err(WireError::Truncated),
                "prefix of {cut} bytes must read as truncated"
            );
        }
        // Well-formed JSON but missing the outcome marker.
        assert_eq!(
            parse_result("{\"spiffi_worker\":4,\"job\":4}"),
            Err(WireError::MissingField("ok"))
        );
        // Missing a counted field.
        assert_eq!(
            parse_result("{\"spiffi_worker\":4,\"job\":4,\"ok\":true,\"events\":5}"),
            Err(WireError::MissingField("glitches"))
        );
        // Non-numeric where a number must be.
        assert!(matches!(
            parse_result("{\"spiffi_worker\":4,\"job\":nope,\"ok\":true}"),
            Err(WireError::BadValue { field: "job", .. })
        ));
        // Regression: a version that overflows u32 used to truncate via
        // `as u32` — 2^32 + PROTO_VERSION read as the current version and
        // the garbage record was accepted. It must be a typed error.
        let overflowed = format!(
            "{{\"spiffi_worker\":{},\"job\":4,\"ok\":true,\
             \"glitches\":0,\"events\":5,\"wall_nanos\":6}}",
            (1u64 << 32) + PROTO_VERSION as u64
        );
        assert!(matches!(
            parse_result(&overflowed),
            Err(WireError::BadValue {
                field: "spiffi_worker",
                ..
            })
        ));
    }

    #[test]
    fn telemetry_frame_round_trips_bit_identically() {
        let rec = telemetry_record();
        let line = encode_telemetry(&rec);
        let got = parse_telemetry(&line).expect("round trip");
        // PartialEq over f64 bit patterns: the exotic utilizations
        // (MIN_POSITIVE, next-after-0.5) must survive exactly.
        assert_eq!(got, rec);
        // An empty frame (no spans, no samples, no disks) round-trips too.
        let empty = TelemetryRecord {
            job: 0,
            interval_ns: 1,
            delta: TelemetryDelta {
                glitches: 0,
                events: 0,
                import_wall_nanos: 0,
                fork_wall_nanos: 0,
                simulate_wall_nanos: 0,
                forked: false,
                avg_disk_utilization: 0.0,
            },
            spans: Vec::new(),
            samples: Vec::new(),
        };
        assert_eq!(
            parse_telemetry(&encode_telemetry(&empty)).expect("empty round trip"),
            empty
        );
    }

    /// Satellite coverage: every truncation of a telemetry frame and a
    /// body tamper must return a typed error — never a panic, never a
    /// silently wrong record. Telemetry rides the same stdout pipe as
    /// results, so a worker killed mid-frame is a normal event.
    #[test]
    fn telemetry_truncation_and_tamper_sweeps_yield_typed_errors() {
        let line = encode_telemetry(&telemetry_record());
        // The frame is ASCII, so every byte offset is a char boundary.
        for cut in 0..line.len() {
            assert!(
                parse_telemetry(&line[..cut]).is_err(),
                "a {cut}-byte prefix must not parse as a valid frame"
            );
        }
        // Tampering anywhere in the body breaks the digest before any
        // field is interpreted.
        let corrupt = line.replace("gl=1", "gl=9");
        assert!(matches!(
            parse_telemetry(&corrupt),
            Err(WireError::BadValue {
                field: "digest",
                ..
            })
        ));
        // Flipping single body bytes must also be caught by the digest.
        let body_at = line.find(" iv=").expect("body marker") + 1;
        for at in [body_at, body_at + 10, line.len() - 1] {
            let mut bytes = line.clone().into_bytes();
            bytes[at] = if bytes[at] == b'7' { b'8' } else { b'7' };
            let flipped = String::from_utf8(bytes).expect("ascii");
            if flipped == line {
                continue;
            }
            assert!(
                parse_telemetry(&flipped).is_err(),
                "byte flip at {at} must not parse"
            );
        }
    }

    #[test]
    fn telemetry_parser_rejects_garbage_with_typed_errors() {
        let err = |line: &str| parse_telemetry(line).expect_err("parse should fail");
        assert_eq!(err(""), WireError::UnknownRecord);
        assert_eq!(err("spiffi-job/4 id=1"), WireError::UnknownRecord);
        assert_eq!(
            err("spiffi-telemetry/999 digest=0 job=1 iv=1"),
            WireError::Version {
                got: 999,
                want: PROTO_VERSION
            }
        );
        assert_eq!(
            err("spiffi-telemetry/4 job=1 iv=1"),
            WireError::MissingField("digest")
        );
        // A declared span the body does not carry (count tampered before
        // digest… impossible on the wire, but the parser must still be
        // total): rebuild a frame with a lying count and a fresh digest.
        let body = "iv=1 gl=0 ev=0 iw=0 fw=0 sw=0 fk=0 du=0000000000000000 ns=2 \
                    s0=warmup:0:1:0 nr=0";
        let lying = format!(
            "spiffi-telemetry/{PROTO_VERSION} digest={:016x} job=1 {body}",
            snapshot_digest(body)
        );
        assert_eq!(
            parse_telemetry(&lying),
            Err(WireError::MissingField("span"))
        );
        // An unknown phase label.
        let body = "iv=1 gl=0 ev=0 iw=0 fw=0 sw=0 fk=0 du=0000000000000000 ns=1 \
                    s0=teleport:0:1:0 nr=0";
        let unknown = format!(
            "spiffi-telemetry/{PROTO_VERSION} digest={:016x} job=1 {body}",
            snapshot_digest(body)
        );
        assert!(matches!(
            parse_telemetry(&unknown),
            Err(WireError::BadValue { field: "span", .. })
        ));
    }
}

//! The assembled SPIFFI video-on-demand system: one event loop driving
//! terminals, the network, node CPUs, buffer pools, prefetchers, disk
//! schedulers and disks.
//!
//! The request pipeline (§5.2):
//!
//! ```text
//! terminal ──wire──▶ node CPU (recv 2200i) ──▶ buffer pool lookup
//!    ▲                                         │ hit: reply
//!    │                                         │ in-flight: attach waiter
//!    │                                         ▼ miss: allocate frame
//!    │                          node CPU (start-I/O 20000i)
//!    │                                         ▼
//!    │                         disk scheduler ──▶ disk mechanics
//!    │                                         ▼ completion
//!    └──wire◀── node CPU (send 6800i) ◀── waiters drained
//! ```
//!
//! Every real reference also enqueues a prefetch for the next stripe block
//! on the same disk; prefetch processes pull from the per-disk prefetch
//! queue subject to the configured strategy (standard / real-time /
//! delayed).

use spiffi_bufferpool::{BufferPool, FrameId, LookupResult, PoolStats};
use spiffi_cpu::Cpu;
use spiffi_disk::Disk;
use spiffi_layout::{BlockAddr, Layout, Placement};
use spiffi_mpeg::{Library, TitleSelector, VideoId};
use spiffi_net::{NetParams, Network};
use spiffi_prefetch::{IssueDecision, PrefetchQueue, PrefetchRequest, PrefetchStats};
use spiffi_sched::{DiskRequest, RequestId, StreamId};
use spiffi_simcore::dist::{uniform_time, Exponential};
use spiffi_simcore::stats::Histogram;
use spiffi_simcore::{Calendar, FastHashMap, SimRng, SimTime, SnapError, SnapReader, SnapWriter};
use spiffi_trace::{
    CpuJobKind, DiskIoDone, DiskIoStart, FaultEvent, NetMsgKind, NetSend, NoopProbe, PoolEvent,
    Probe, TerminalEvent,
};

use crate::config::{RunTiming, SystemConfig};
use crate::metrics::RunReport;
use crate::node::{decode_waiter, waiter_token, CpuJob, DiskUnit, IoCtx, Node, PendingRead};
use crate::piggyback::{Piggyback, StartDecision};
use crate::terminal::Terminal;

/// A skip-based visual search (§8.1): show `show` of video, skip over
/// `skip`, repeat.
#[derive(Clone, Copy, Debug)]
pub struct VisualSearch {
    /// Length of each shown window (the paper suggests "one or two
    /// seconds").
    pub show: spiffi_simcore::SimDuration,
    /// Content skipped between windows ("out of every several seconds").
    pub skip: spiffi_simcore::SimDuration,
    /// True for fast-forward, false for rewind.
    pub forward: bool,
}

#[derive(Clone, Copy, Debug)]
struct SearchState {
    session: u64,
    search: VisualSearch,
    end_at: SimTime,
    started: bool,
}

/// One entry of the fault-scenario action table. The table is a pure
/// function of `cfg.scenario` — a degrade window expands to a set/restore
/// pair — so it is rebuilt from the config on snapshot import and never
/// serialized; pending [`Event::FaultFire`] events index into it.
#[derive(Clone, Copy, Debug)]
enum FaultAction {
    /// Permanently fail a disk and re-dispatch its queue to a sibling.
    KillDisk { node: u32, disk: u32 },
    /// Scale a disk's mechanical latencies to `pct`% of nominal.
    SetLatencyScale { node: u32, disk: u32, pct: u32 },
    /// Every `every`-th terminal abandons its current title.
    Abandon { every: u32 },
}

/// The firing schedule `cfg.scenario` expands to, in declaration order:
/// a disk death or abandon burst is one action; a degrade window is a
/// set-scale action at its start and a restore-to-100% action at its end.
fn fault_schedule_of(cfg: &SystemConfig) -> Vec<(spiffi_simcore::SimDuration, FaultAction)> {
    use crate::scenario::FaultSpec;
    let mut out = Vec::new();
    let Some(scenario) = &cfg.scenario else {
        return out;
    };
    for fault in &scenario.faults {
        match *fault {
            FaultSpec::DiskDeath { node, disk, at } => {
                out.push((at, FaultAction::KillDisk { node, disk }));
            }
            FaultSpec::DiskDegrade {
                node,
                disk,
                at,
                dur,
                factor_pct,
            } => {
                out.push((
                    at,
                    FaultAction::SetLatencyScale {
                        node,
                        disk,
                        pct: factor_pct,
                    },
                ));
                // The restore may land past run end; it then simply
                // never pops.
                out.push((
                    at + dur,
                    FaultAction::SetLatencyScale {
                        node,
                        disk,
                        pct: 100,
                    },
                ));
            }
            FaultSpec::AbandonBurst { at, every } => {
                out.push((at, FaultAction::Abandon { every }));
            }
        }
    }
    out
}

/// The action table pending [`Event::FaultFire`] events index into.
fn fault_actions_of(cfg: &SystemConfig) -> Vec<FaultAction> {
    fault_schedule_of(cfg).into_iter().map(|(_, a)| a).collect()
}

/// Size of a read-request message on the wire.
pub const REQUEST_MSG_BYTES: u64 = 128;
/// Header overhead of a data reply on the wire.
pub const REPLY_HEADER_BYTES: u64 = 128;

/// Simulation events.
///
/// The enum is kept at 24 bytes (checked by a compile-time assertion
/// below): millions of these sit in the calendar's buckets at scale, so
/// every field earns its place. `RequestArrive` carries no target node —
/// the node is a pure function of the block's layout placement and is
/// recomputed at dispatch — and epochs travel as the `u16` the terminal
/// stores (see [`Terminal::epoch`]).
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// A terminal comes online and selects its first title.
    StartTerminal(u32),
    /// Scheduled wake for a terminal; stale if `gen` no longer matches.
    Wake {
        /// Terminal index.
        term: u32,
        /// Generation at scheduling time.
        gen: u64,
    },
    /// A read request reached its target node (the node owning `block`
    /// per the layout).
    RequestArrive {
        /// Requesting terminal.
        term: u32,
        /// Terminal epoch.
        epoch: u16,
        /// Requested block.
        block: BlockAddr,
        /// Deadline assigned by the terminal.
        deadline: SimTime,
    },
    /// A data reply reached its terminal.
    ReplyArrive {
        /// Destination terminal.
        term: u32,
        /// Epoch echoed from the request.
        epoch: u16,
        /// Delivered block.
        block: BlockAddr,
    },
    /// A node CPU finished its current job.
    CpuDone {
        /// The node.
        node: u32,
    },
    /// A disk finished its current transfer.
    DiskDone {
        /// The node.
        node: u32,
        /// Node-local disk index.
        disk: u32,
    },
    /// A delayed prefetch became issuable; stale if `gen` mismatches.
    PrefetchRelease {
        /// The node.
        node: u32,
        /// Node-local disk index.
        disk: u32,
        /// Release-timer generation.
        gen: u64,
    },
    /// A piggyback batch for this title fires.
    PiggybackFire {
        /// The batched title.
        video: VideoId,
    },
    /// End of warm-up: begin collecting statistics.
    BeginMeasure,
    /// A subscriber pressed fast-forward/rewind: jump the terminal to a
    /// new position in its current title (§8.1).
    UserSeek {
        /// The terminal.
        term: u32,
        /// Target frame.
        frame: u64,
    },
    /// One step of a skip-based visual search (§8.1): play a short window,
    /// then jump.
    SearchStep {
        /// The terminal.
        term: u32,
        /// Search-session id; stale steps are dropped.
        session: u64,
    },
    /// Switch a terminal onto its title's §8.1 search version.
    SmoothSearchBegin {
        /// The terminal.
        term: u32,
        /// True for fast-forward.
        forward: bool,
        /// When to switch back to the normal version.
        end_at: SimTime,
    },
    /// Switch a terminal back from a search version to the normal title.
    SmoothSearchEnd {
        /// The terminal.
        term: u32,
    },
    /// Execute action `idx` of the fault-scenario action table (built
    /// deterministically from `cfg.scenario`, so the index alone
    /// identifies the perturbation across snapshot round-trips).
    FaultFire(u32),
}

/// Base of the per-terminal RNG stream ids: terminal `t` draws from stream
/// `TERMINAL_STREAM_BASE + t`. Chosen far above every other stream id in
/// use (layout `0x1a70`, per-disk `(node << 16) | disk`) so terminal
/// streams can never collide with component streams.
const TERMINAL_STREAM_BASE: u64 = 0x7e20_0000_0000;

/// The hot-state compaction contract: an [`Event`] stays within 24 bytes
/// so calendar buckets hold three per cacheline. Growing a variant past
/// this is a deliberate decision, not an accident — this assertion makes
/// it one.
const _: () = assert!(std::mem::size_of::<Event>() <= 24);

/// Stable variant name of an event, for [`Probe::sim_event`] tallies.
fn event_kind(ev: &Event) -> &'static str {
    match ev {
        Event::StartTerminal(_) => "StartTerminal",
        Event::Wake { .. } => "Wake",
        Event::RequestArrive { .. } => "RequestArrive",
        Event::ReplyArrive { .. } => "ReplyArrive",
        Event::CpuDone { .. } => "CpuDone",
        Event::DiskDone { .. } => "DiskDone",
        Event::PrefetchRelease { .. } => "PrefetchRelease",
        Event::PiggybackFire { .. } => "PiggybackFire",
        Event::BeginMeasure => "BeginMeasure",
        Event::UserSeek { .. } => "UserSeek",
        Event::SearchStep { .. } => "SearchStep",
        Event::SmoothSearchBegin { .. } => "SmoothSearchBegin",
        Event::SmoothSearchEnd { .. } => "SmoothSearchEnd",
        Event::FaultFire(_) => "FaultFire",
    }
}

/// Parse a `SPIFFI_CAL_KERNEL` value: `heap` picks the reference binary
/// heap, `bucket` (or unset/empty) the default bucket queue. Any other
/// value is an error — a typo like `hep` silently falling back to the
/// bucket kernel would invalidate a determinism diff without a trace.
pub(crate) fn parse_kernel_env(v: Option<&str>) -> Result<spiffi_simcore::KernelKind, String> {
    match v {
        None => Ok(spiffi_simcore::KernelKind::Bucket),
        Some(s) if s.is_empty() || s.eq_ignore_ascii_case("bucket") => {
            Ok(spiffi_simcore::KernelKind::Bucket)
        }
        Some(s) if s.eq_ignore_ascii_case("heap") => Ok(spiffi_simcore::KernelKind::Heap),
        Some(s) => Err(s.to_string()),
    }
}

/// The calendar kernel selected by `SPIFFI_CAL_KERNEL`. Both kernels pop
/// the identical `(time, seq)` order, so this knob trades only wall-clock
/// speed, never results — which is what lets CI diff the two kernels'
/// reports byte-for-byte. An unknown value aborts with a clear message
/// instead of silently running the default kernel.
fn kernel_from_env() -> spiffi_simcore::KernelKind {
    match parse_kernel_env(std::env::var("SPIFFI_CAL_KERNEL").ok().as_deref()) {
        Ok(kind) => kind,
        Err(bad) => {
            eprintln!(
                "spiffi: unknown SPIFFI_CAL_KERNEL value {bad:?} (expected \"bucket\" or \"heap\")"
            );
            std::process::exit(2);
        }
    }
}

/// The instant the late joiners' stagger window opens: `warmup - stagger`,
/// clamped to time zero. [`SystemConfig::validate`] rejects
/// `stagger > warmup`, but the boundary itself must degrade to a cold
/// snapshot (boundary at time zero) rather than underflow if that guard is
/// ever bypassed — the same graceful degradation `stagger == 0` gets.
fn late_join_open(timing: &RunTiming) -> SimTime {
    SimTime::ZERO + timing.warmup.saturating_sub(timing.stagger)
}

/// Probe-facing classification of a CPU job.
fn cpu_job_kind(job: &CpuJob) -> CpuJobKind {
    match job {
        CpuJob::RecvRequest { .. } => CpuJobKind::RecvRequest,
        CpuJob::StartIo { .. } => CpuJobKind::StartIo,
        CpuJob::SendReply { .. } => CpuJobKind::SendReply,
    }
}

// ----- snapshot token codecs ---------------------------------------------
//
// Variant tags follow declaration order; adding a variant appends a tag.
// Every codec is positional under the snap grammar: the reader checks each
// key, so a tag/payload mismatch surfaces as a typed `SnapError` rather
// than silent misinterpretation.

/// Serialize one calendar [`Event`]: a variant tag (`ek`) followed by the
/// variant's fields.
fn snap_event(w: &mut SnapWriter, ev: &Event) {
    match *ev {
        Event::StartTerminal(t) => {
            w.u8("ek", 0);
            w.u32("ev", t);
        }
        Event::Wake { term, gen } => {
            w.u8("ek", 1);
            w.u32("ev", term);
            w.u64("ew", gen);
        }
        Event::RequestArrive {
            term,
            epoch,
            block,
            deadline,
        } => {
            w.u8("ek", 2);
            w.u32("ev", term);
            w.u16("ee", epoch);
            w.u32("eb", block.video.0);
            w.u32("ex", block.index);
            w.time("ed", deadline);
        }
        Event::ReplyArrive { term, epoch, block } => {
            w.u8("ek", 3);
            w.u32("ev", term);
            w.u16("ee", epoch);
            w.u32("eb", block.video.0);
            w.u32("ex", block.index);
        }
        Event::CpuDone { node } => {
            w.u8("ek", 4);
            w.u32("ev", node);
        }
        Event::DiskDone { node, disk } => {
            w.u8("ek", 5);
            w.u32("ev", node);
            w.u32("ey", disk);
        }
        Event::PrefetchRelease { node, disk, gen } => {
            w.u8("ek", 6);
            w.u32("ev", node);
            w.u32("ey", disk);
            w.u64("ew", gen);
        }
        Event::PiggybackFire { video } => {
            w.u8("ek", 7);
            w.u32("eb", video.0);
        }
        Event::BeginMeasure => w.u8("ek", 8),
        Event::UserSeek { term, frame } => {
            w.u8("ek", 9);
            w.u32("ev", term);
            w.u64("ew", frame);
        }
        Event::SearchStep { term, session } => {
            w.u8("ek", 10);
            w.u32("ev", term);
            w.u64("ew", session);
        }
        Event::SmoothSearchBegin {
            term,
            forward,
            end_at,
        } => {
            w.u8("ek", 11);
            w.u32("ev", term);
            w.bool("ef", forward);
            w.time("ed", end_at);
        }
        Event::SmoothSearchEnd { term } => {
            w.u8("ek", 12);
            w.u32("ev", term);
        }
        Event::FaultFire(idx) => {
            w.u8("ek", 13);
            w.u32("ev", idx);
        }
    }
}

/// Decode one [`Event`] written by [`snap_event`].
fn read_event(r: &mut SnapReader<'_>) -> Result<Event, SnapError> {
    Ok(match r.u8("ek")? {
        0 => Event::StartTerminal(r.u32("ev")?),
        1 => Event::Wake {
            term: r.u32("ev")?,
            gen: r.u64("ew")?,
        },
        2 => Event::RequestArrive {
            term: r.u32("ev")?,
            epoch: r.u16("ee")?,
            block: BlockAddr {
                video: VideoId(r.u32("eb")?),
                index: r.u32("ex")?,
            },
            deadline: r.time("ed")?,
        },
        3 => Event::ReplyArrive {
            term: r.u32("ev")?,
            epoch: r.u16("ee")?,
            block: BlockAddr {
                video: VideoId(r.u32("eb")?),
                index: r.u32("ex")?,
            },
        },
        4 => Event::CpuDone { node: r.u32("ev")? },
        5 => Event::DiskDone {
            node: r.u32("ev")?,
            disk: r.u32("ey")?,
        },
        6 => Event::PrefetchRelease {
            node: r.u32("ev")?,
            disk: r.u32("ey")?,
            gen: r.u64("ew")?,
        },
        7 => Event::PiggybackFire {
            video: VideoId(r.u32("eb")?),
        },
        8 => Event::BeginMeasure,
        9 => Event::UserSeek {
            term: r.u32("ev")?,
            frame: r.u64("ew")?,
        },
        10 => Event::SearchStep {
            term: r.u32("ev")?,
            session: r.u64("ew")?,
        },
        11 => Event::SmoothSearchBegin {
            term: r.u32("ev")?,
            forward: r.bool("ef")?,
            end_at: r.time("ed")?,
        },
        12 => Event::SmoothSearchEnd { term: r.u32("ev")? },
        13 => Event::FaultFire(r.u32("ev")?),
        tag => {
            return Err(SnapError::BadValue {
                key: "ek",
                value: tag.to_string(),
            })
        }
    })
}

/// Serialize one queued [`CpuJob`]: a variant tag (`jk`) plus fields. The
/// scheduler entry inside `StartIo` is spelled out field-by-field — its
/// queue-resident twins are serialized by the scheduler itself, and both
/// encodings must stay in sync with [`DiskRequest`].
fn snap_cpu_job(w: &mut SnapWriter, job: &CpuJob) {
    match *job {
        CpuJob::RecvRequest {
            term,
            epoch,
            block,
            deadline,
        } => {
            w.u8("jk", 0);
            w.u32("jt", term);
            w.u16("je", epoch);
            w.u32("jb", block.video.0);
            w.u32("jx", block.index);
            w.time("jd", deadline);
        }
        CpuJob::StartIo { disk, req } => {
            w.u8("jk", 1);
            w.u32("jy", disk);
            w.u64("ji", req.id.0);
            w.u32("jc", req.cylinder);
            match req.deadline {
                Some(d) => {
                    w.bool("jl", true);
                    w.time("jm", d);
                }
                None => w.bool("jl", false),
            }
            match req.stream {
                Some(s) => {
                    w.bool("js", true);
                    w.u32("jn", s.0);
                }
                None => w.bool("js", false),
            }
            w.bool("jp", req.is_prefetch);
        }
        CpuJob::SendReply {
            term,
            epoch,
            block,
            len,
        } => {
            w.u8("jk", 2);
            w.u32("jt", term);
            w.u16("je", epoch);
            w.u32("jb", block.video.0);
            w.u32("jx", block.index);
            w.u64("jz", len);
        }
    }
}

/// Decode one [`CpuJob`] written by [`snap_cpu_job`].
fn read_cpu_job(r: &mut SnapReader<'_>) -> Result<CpuJob, SnapError> {
    Ok(match r.u8("jk")? {
        0 => CpuJob::RecvRequest {
            term: r.u32("jt")?,
            epoch: r.u16("je")?,
            block: BlockAddr {
                video: VideoId(r.u32("jb")?),
                index: r.u32("jx")?,
            },
            deadline: r.time("jd")?,
        },
        1 => {
            let disk = r.u32("jy")?;
            let id = RequestId(r.u64("ji")?);
            let cylinder = r.u32("jc")?;
            let deadline = if r.bool("jl")? {
                Some(r.time("jm")?)
            } else {
                None
            };
            let stream = if r.bool("js")? {
                Some(StreamId(r.u32("jn")?))
            } else {
                None
            };
            let is_prefetch = r.bool("jp")?;
            CpuJob::StartIo {
                disk,
                req: DiskRequest {
                    id,
                    cylinder,
                    deadline,
                    stream,
                    is_prefetch,
                },
            }
        }
        2 => CpuJob::SendReply {
            term: r.u32("jt")?,
            epoch: r.u16("je")?,
            block: BlockAddr {
                video: VideoId(r.u32("jb")?),
                index: r.u32("jx")?,
            },
            len: r.u64("jz")?,
        },
        tag => {
            return Err(SnapError::BadValue {
                key: "jk",
                value: tag.to_string(),
            })
        }
    })
}

/// The assembled system. Build with [`VodSystem::new`], run to completion
/// with [`VodSystem::run`].
///
/// The system is generic over an observation [`Probe`]. The default
/// [`NoopProbe`] disables every instrumentation site at compile time —
/// `VodSystem` with no type argument is exactly the untraced system — while
/// [`VodSystem::with_probe`] builds a traced instance whose probe receives
/// disk, CPU, network, buffer-pool, and terminal telemetry as the run
/// unfolds. Probes are observation-only and cannot perturb the simulation;
/// a traced run produces a [`RunReport`] bit-identical to an untraced one.
///
/// `Clone` (for probes that are themselves `Clone`, which includes the
/// default [`NoopProbe`]) deep-copies the entire simulation state — the
/// event calendar, every node's disk queues and buffer pool, the terminal
/// vector, the piggyback manager and all RNG streams — except the video
/// library, which is immutable and stays shared behind its `Arc`. A clone
/// and its original evolve independently and deterministically, which is
/// what makes warm snapshots ([`VodSystem::fork_to`]) possible.
#[derive(Clone)]
pub struct VodSystem<P: Probe = NoopProbe> {
    cfg: SystemConfig,
    cal: Calendar<Event>,
    library: std::sync::Arc<Library>,
    layout: Layout,
    selector: TitleSelector,
    net: Network,
    nodes: Vec<Node>,
    terminals: Vec<Terminal>,
    /// One independent RNG stream per terminal index (stream id
    /// `TERMINAL_STREAM_BASE + t`). A terminal's join instant, title
    /// choices, initial positions and pause plans are drawn exclusively
    /// from its own stream, so adding terminal `n+1` never perturbs the
    /// draws — and therefore the event history — of terminals `0..=n`.
    term_rngs: Vec<SimRng>,
    piggyback: Option<Piggyback>,
    /// Active skip-based visual searches, by terminal.
    searches: std::collections::HashMap<u32, SearchState>,
    search_sessions: u64,
    measuring: bool,
    next_req_id: u64,
    // --- measurement-window counters ---
    glitches_measured: u64,
    glitching_terminals: crate::bitset::TermBitset,
    blocks_delivered: u64,
    events_processed: u64,
    /// Disk I/O latency (scheduler queueing + service), seconds; 5 ms bins
    /// to 2 s.
    io_latency: Histogram,
    /// Demand I/Os completing after their deadline.
    deadline_misses: u64,
    /// Fault-scenario action table (see [`FaultAction`]); config-derived,
    /// rebuilt on snapshot import rather than serialized.
    fault_actions: Vec<FaultAction>,
    /// Fault actions executed so far (serialized — a forked system must
    /// agree with its parent on which faults already fired).
    faults_fired: u64,
    // --- recycled event-loop buffers (allocation-free steady state) ---
    /// Request buffer handed to [`Terminal::pump_reusing`] each wake.
    pump_scratch: Vec<u32>,
    /// Waiter buffer handed to `BufferPool::complete_io_into` each I/O.
    waiter_scratch: Vec<u64>,
    /// Observation probe; [`NoopProbe`] by default, compiled out entirely.
    probe: P,
}

impl VodSystem {
    /// Build the system described by `cfg`.
    ///
    /// # Panics
    /// If the configuration fails [`SystemConfig::validate`].
    pub fn new(cfg: SystemConfig) -> Self {
        let library = Self::generate_library(&cfg);
        Self::with_library(cfg, library)
    }

    /// The video library [`VodSystem::new`] would generate for `cfg`.
    ///
    /// Generation draws an exponential frame-size sample per frame of every
    /// title, which dominates construction cost. The library depends only
    /// on `cfg.seed`, `cfg.n_videos`, `cfg.video`, `cfg.search_speedup`,
    /// and a scenario's bitrate mix — callers running many simulations
    /// that agree on those fields (a capacity search at one replication
    /// seed, a scheduler comparison) should generate once and hand clones
    /// to [`VodSystem::with_library`].
    pub fn generate_library(cfg: &SystemConfig) -> Library {
        let seed = cfg.seed ^ 0x11b;
        let base = cfg.video;
        let mix = cfg.scenario.as_ref().and_then(|s| s.mix);
        let params_of = move |i: u32| match mix {
            Some(m) if m.applies_to(i) => spiffi_mpeg::VideoParams {
                bit_rate_bps: m.bit_rate_bps,
                ..base
            },
            _ => base,
        };
        match cfg.search_speedup {
            None => Library::generate_each(cfg.n_videos, seed, params_of),
            Some(speedup) => {
                Library::generate_each_with_search_versions(cfg.n_videos, seed, speedup, params_of)
            }
        }
    }

    /// Build the system described by `cfg` around a pre-generated
    /// `library`. Behaviour is bit-identical to [`VodSystem::new`] when
    /// `library` equals [`VodSystem::generate_library`]`(&cfg)`; passing
    /// any other library is a logic error (the layout and workload would
    /// disagree with the seed-derived titles).
    ///
    /// Accepts a bare [`Library`] or an `Arc<Library>` — the experiment
    /// engine shares one generated library across many concurrent runs via
    /// [`LibraryCache`](crate::cache::LibraryCache), so the system stores
    /// an [`Arc`](std::sync::Arc) and never clones title data.
    ///
    /// # Panics
    /// If the configuration fails [`SystemConfig::validate`].
    pub fn with_library(cfg: SystemConfig, library: impl Into<std::sync::Arc<Library>>) -> Self {
        Self::with_probe(cfg, library, NoopProbe)
    }

    /// Build the system with *marginal-probe* timing: terminals `0..base`
    /// join staggered over `[0, stagger)` as usual, while terminals
    /// `base..n_terminals` join staggered over `[warmup - stagger, warmup)`
    /// — the last stagger-width slice of the warm-up, immediately before
    /// `BeginMeasure`. With `base >= n_terminals` every terminal is
    /// base-style and only the (shared) timeline differs from
    /// [`VodSystem::with_library`] by nothing at all.
    ///
    /// This is the from-scratch twin of the snapshot/fork path: running a
    /// system built here to completion produces the same report as
    /// building at `base` terminals, [`VodSystem::replay_to_snapshot`],
    /// then [`VodSystem::fork_to`]`(n_terminals)` — the capacity engine
    /// uses that equivalence to make a bisection step cost O(Δterminals).
    ///
    /// # Panics
    /// If the configuration fails [`SystemConfig::validate`].
    pub fn with_library_marginal(
        cfg: SystemConfig,
        library: impl Into<std::sync::Arc<Library>>,
        base: u32,
    ) -> Self {
        Self::build(cfg, library.into(), NoopProbe, Some(base))
    }

    /// Serialize the complete mutable simulation state as snapshot tokens:
    /// the calendar (clock, sequence counter, every pending event), the
    /// network tracker, each node's CPU queue, buffer pool, disks (drive
    /// state, scheduler queue, prefetch queue, RNG stream, in-flight
    /// table), every terminal with its RNG stream, the piggyback manager,
    /// active visual searches, and all measurement counters.
    ///
    /// Everything derivable from the configuration — the library, the
    /// layout, the title selector, frame capacities — is *not* serialized;
    /// [`VodSystem::snap_import`] rebuilds it from the same `cfg`. Floats
    /// travel as IEEE-754 bit patterns, so an exported system re-imported
    /// under the same configuration re-exports byte-identically and forks
    /// ([`VodSystem::fork_to`]) bit-identically to the original.
    pub fn snap_export(&self) -> String {
        let mut w = SnapWriter::new();
        w.time("cn", self.cal.now());
        w.u64("cq", self.cal.next_seq());
        w.u64("ct", self.cal.scheduled_total());
        let entries = self.cal.export_entries();
        w.usize("ce", entries.len());
        for (t, seq, ev) in entries {
            w.time("et", t);
            w.u64("es", seq);
            snap_event(&mut w, ev);
        }
        self.net.snap_export(&mut w);
        w.usize("nn", self.nodes.len());
        for node in &self.nodes {
            node.cpu.snap_export(&mut w, snap_cpu_job);
            node.pool.snap_export(&mut w);
            w.usize("dn", node.disks.len());
            for unit in &node.disks {
                unit.disk.snap_export(&mut w);
                unit.sched.snap_export(&mut w);
                unit.prefetch.snap_export(&mut w);
                let s = unit.rng.state();
                w.u64("r0", s[0]);
                w.u64("r1", s[1]);
                w.u64("r2", s[2]);
                w.u64("r3", s[3]);
                match unit.current {
                    Some(rid) => {
                        w.bool("uc", true);
                        w.u64("ur", rid.0);
                    }
                    None => w.bool("uc", false),
                }
                // The in-flight map is never iterated by the simulation, so
                // RequestId order is the canonical export order. `by_block`
                // is its exact inverse and is rebuilt on import.
                let mut inflight: Vec<(&RequestId, &IoCtx)> = unit.inflight.iter().collect();
                inflight.sort_unstable_by_key(|(rid, _)| rid.0);
                w.usize("un", inflight.len());
                for (rid, ctx) in inflight {
                    w.u64("ui", rid.0);
                    w.u32("ub", ctx.block.video.0);
                    w.u32("ux", ctx.block.index);
                    w.u32("uf", ctx.frame.0);
                    w.bool("up", ctx.is_prefetch);
                    w.time("ua", ctx.issued_at);
                    match ctx.deadline {
                        Some(d) => {
                            w.bool("ud", true);
                            w.time("ue", d);
                        }
                        None => w.bool("ud", false),
                    }
                }
                w.u64("ug", unit.release_gen);
                match unit.release_timer {
                    Some(t) => {
                        w.bool("ut", true);
                        w.time("uv", t);
                    }
                    None => w.bool("ut", false),
                }
                w.bool("ul", unit.alive);
            }
            w.usize("wn", node.pending_reads.len());
            for pr in &node.pending_reads {
                w.u32("wt", pr.term);
                w.u16("we", pr.epoch);
                w.u32("wb", pr.block.video.0);
                w.u32("wx", pr.block.index);
                w.time("wd", pr.deadline);
            }
        }
        w.usize("tn", self.terminals.len());
        for (term, rng) in self.terminals.iter().zip(&self.term_rngs) {
            term.snap_export(&mut w);
            let s = rng.state();
            w.u64("g0", s[0]);
            w.u64("g1", s[1]);
            w.u64("g2", s[2]);
            w.u64("g3", s[3]);
        }
        match &self.piggyback {
            Some(pb) => {
                w.bool("pb", true);
                pb.snap_export(&mut w);
            }
            None => w.bool("pb", false),
        }
        let mut searches: Vec<(&u32, &SearchState)> = self.searches.iter().collect();
        searches.sort_unstable_by_key(|(t, _)| **t);
        w.usize("xn", searches.len());
        for (t, s) in searches {
            w.u32("xt", *t);
            w.u64("xs", s.session);
            w.dur("xh", s.search.show);
            w.dur("xk", s.search.skip);
            w.bool("xf", s.search.forward);
            w.time("xe", s.end_at);
            w.bool("xb", s.started);
        }
        w.u64("xq", self.search_sessions);
        w.bool("me", self.measuring);
        w.u64("ri", self.next_req_id);
        w.u64("gm", self.glitches_measured);
        self.glitching_terminals.snap_export(&mut w);
        w.u64("bd", self.blocks_delivered);
        w.u64("ep", self.events_processed);
        self.io_latency.snap_export(&mut w);
        w.u64("dm", self.deadline_misses);
        w.u64("ff", self.faults_fired);
        w.finish()
    }

    /// Rebuild a system from [`VodSystem::snap_export`] tokens.
    ///
    /// `cfg` and `library` must be the exact configuration and library the
    /// exporting system ran under (the wire layer enforces this with a
    /// config fingerprint); `cfg.n_terminals` is the snapshot's terminal
    /// count, which [`VodSystem::fork_to`] then extends per probe. Shape
    /// mismatches between tokens and configuration surface as typed
    /// [`SnapError`]s, never panics.
    ///
    /// # Panics
    /// If the configuration fails [`SystemConfig::validate`] — the same
    /// contract as every other constructor.
    pub fn snap_import(
        cfg: SystemConfig,
        library: impl Into<std::sync::Arc<Library>>,
        body: &str,
    ) -> Result<Self, SnapError> {
        let library = library.into();
        if let Err(e) = cfg.validate() {
            panic!("invalid configuration: {e}");
        }
        // Derived state mirrors `build` exactly: same layout, same disk
        // capacity, same map pre-sizing, so the imported system is
        // structurally indistinguishable from the exporter.
        let layout = match cfg.placement {
            Placement::Striped => Layout::striped(cfg.topology, cfg.stripe_bytes, &library),
            Placement::NonStriped => {
                let mut rng = SimRng::stream(cfg.seed, 0x1a70);
                Layout::non_striped(cfg.topology, cfg.stripe_bytes, &library, &mut rng)
            }
            Placement::StripeGroup { width } => {
                Layout::stripe_group(cfg.topology, cfg.stripe_bytes, &library, width)
            }
        };
        let disk_params = cfg.disk.with_capacity_for(layout.max_disk_used_bytes());
        let inflight_hint = (4 * cfg.n_terminals as usize)
            .div_ceil(cfg.topology.total_disks().max(1) as usize)
            .clamp(16, 4096);
        let selector = TitleSelector::new(cfg.access, cfg.n_videos);
        let pump_cap = (cfg.terminal_memory_bytes / cfg.stripe_bytes.max(1) + 1) as usize;

        let mut r = SnapReader::new(body);
        let now = r.time("cn")?;
        let next_seq = r.u64("cq")?;
        let scheduled_total = r.u64("ct")?;
        let ce = r.usize("ce")?;
        let mut entries = Vec::with_capacity(ce);
        for _ in 0..ce {
            let t = r.time("et")?;
            let seq = r.u64("es")?;
            entries.push((t, seq, read_event(&mut r)?));
        }
        let cal =
            Calendar::from_entries(kernel_from_env(), now, next_seq, scheduled_total, entries);
        // `build` wires the default network parameters (see its `net`
        // field); the import must match to stay byte-identical.
        let net = Network::snap_import(NetParams::default(), &mut r)?;
        let nn = r.usize("nn")?;
        if nn != cfg.topology.nodes as usize {
            return Err(SnapError::BadValue {
                key: "nn",
                value: nn.to_string(),
            });
        }
        let mut nodes = Vec::with_capacity(nn);
        for _ in 0..nn {
            let cpu = Cpu::snap_import(cfg.cpu, &mut r, read_cpu_job)?;
            let pool = BufferPool::snap_import(cfg.frames_per_node(), cfg.policy, &mut r)?;
            let dn = r.usize("dn")?;
            if dn != cfg.topology.disks_per_node as usize {
                return Err(SnapError::BadValue {
                    key: "dn",
                    value: dn.to_string(),
                });
            }
            let mut disks = Vec::with_capacity(dn);
            for _ in 0..dn {
                let disk = Disk::snap_import(disk_params, &mut r)?;
                let mut sched = cfg.scheduler.build();
                sched.snap_import(&mut r)?;
                let prefetch = PrefetchQueue::snap_import(cfg.prefetch, &mut r)?;
                let rng =
                    SimRng::from_state([r.u64("r0")?, r.u64("r1")?, r.u64("r2")?, r.u64("r3")?]);
                let current = if r.bool("uc")? {
                    Some(RequestId(r.u64("ur")?))
                } else {
                    None
                };
                let un = r.usize("un")?;
                let mut inflight: FastHashMap<RequestId, IoCtx> =
                    FastHashMap::with_capacity_and_hasher(
                        inflight_hint.max(un),
                        Default::default(),
                    );
                let mut by_block: FastHashMap<BlockAddr, RequestId> =
                    FastHashMap::with_capacity_and_hasher(
                        inflight_hint.max(un),
                        Default::default(),
                    );
                for _ in 0..un {
                    let rid = RequestId(r.u64("ui")?);
                    let block = BlockAddr {
                        video: VideoId(r.u32("ub")?),
                        index: r.u32("ux")?,
                    };
                    let ctx = IoCtx {
                        block,
                        frame: FrameId(r.u32("uf")?),
                        is_prefetch: r.bool("up")?,
                        issued_at: r.time("ua")?,
                        deadline: if r.bool("ud")? {
                            Some(r.time("ue")?)
                        } else {
                            None
                        },
                    };
                    if inflight.insert(rid, ctx).is_some() {
                        return Err(SnapError::BadValue {
                            key: "ui",
                            value: rid.0.to_string(),
                        });
                    }
                    // One demand/prefetch issue per block at a time (the
                    // pool lookup guards double-issue), so the inverse
                    // index is a bijection and rebuilds losslessly.
                    by_block.insert(block, rid);
                }
                let release_gen = r.u64("ug")?;
                let release_timer = if r.bool("ut")? {
                    Some(r.time("uv")?)
                } else {
                    None
                };
                let alive = r.bool("ul")?;
                disks.push(DiskUnit {
                    disk,
                    sched,
                    prefetch,
                    rng,
                    current,
                    inflight,
                    by_block,
                    release_gen,
                    release_timer,
                    alive,
                });
            }
            let wn = r.usize("wn")?;
            let mut pending_reads = std::collections::VecDeque::with_capacity(wn.max(16));
            for _ in 0..wn {
                pending_reads.push_back(PendingRead {
                    term: r.u32("wt")?,
                    epoch: r.u16("we")?,
                    block: BlockAddr {
                        video: VideoId(r.u32("wb")?),
                        index: r.u32("wx")?,
                    },
                    deadline: r.time("wd")?,
                });
            }
            nodes.push(Node {
                cpu,
                pool,
                disks,
                pending_reads,
            });
        }
        let tn = r.usize("tn")?;
        if tn != cfg.n_terminals as usize {
            return Err(SnapError::BadValue {
                key: "tn",
                value: tn.to_string(),
            });
        }
        let mut terminals = Vec::with_capacity(tn);
        let mut term_rngs = Vec::with_capacity(tn);
        for t in 0..cfg.n_terminals {
            let mut term = Terminal::new(t, cfg.terminal_memory_bytes);
            term.snap_import(&mut r, |id| {
                if (id.0 as usize) < library.len() {
                    Some(library.get(id))
                } else {
                    None
                }
            })?;
            terminals.push(term);
            term_rngs.push(SimRng::from_state([
                r.u64("g0")?,
                r.u64("g1")?,
                r.u64("g2")?,
                r.u64("g3")?,
            ]));
        }
        let has_piggyback = r.bool("pb")?;
        if has_piggyback != cfg.piggyback_delay.is_some() {
            return Err(SnapError::BadValue {
                key: "pb",
                value: has_piggyback.to_string(),
            });
        }
        let piggyback = match cfg.piggyback_delay {
            Some(delay) => {
                let mut pb = Piggyback::new(delay);
                pb.snap_import(&mut r)?;
                Some(pb)
            }
            None => None,
        };
        let xn = r.usize("xn")?;
        let mut searches = std::collections::HashMap::with_capacity(xn);
        for _ in 0..xn {
            let t = r.u32("xt")?;
            let state = SearchState {
                session: r.u64("xs")?,
                search: VisualSearch {
                    show: r.dur("xh")?,
                    skip: r.dur("xk")?,
                    forward: r.bool("xf")?,
                },
                end_at: r.time("xe")?,
                started: r.bool("xb")?,
            };
            if searches.insert(t, state).is_some() {
                return Err(SnapError::BadValue {
                    key: "xt",
                    value: t.to_string(),
                });
            }
        }
        let search_sessions = r.u64("xq")?;
        let measuring = r.bool("me")?;
        let next_req_id = r.u64("ri")?;
        let glitches_measured = r.u64("gm")?;
        let mut glitching_terminals = crate::bitset::TermBitset::with_capacity(cfg.n_terminals);
        glitching_terminals.snap_import(&mut r)?;
        let blocks_delivered = r.u64("bd")?;
        let events_processed = r.u64("ep")?;
        let io_latency = Histogram::snap_import(&mut r)?;
        let deadline_misses = r.u64("dm")?;
        let faults_fired = r.u64("ff")?;
        r.finish()?;
        // The action table is a pure function of the configuration;
        // pending FaultFire events re-bind to it by index.
        let fault_actions = fault_actions_of(&cfg);

        Ok(VodSystem {
            cfg,
            cal,
            library,
            layout,
            selector,
            net,
            nodes,
            terminals,
            term_rngs,
            piggyback,
            searches,
            search_sessions,
            measuring,
            next_req_id,
            glitches_measured,
            glitching_terminals,
            blocks_delivered,
            events_processed,
            io_latency,
            deadline_misses,
            fault_actions,
            faults_fired,
            pump_scratch: Vec::with_capacity(pump_cap),
            waiter_scratch: Vec::with_capacity(16),
            probe: NoopProbe,
        })
    }
}

impl<P: Probe> VodSystem<P> {
    /// Build a traced system: [`VodSystem::with_library`] plus an
    /// observation `probe` that will receive telemetry callbacks as the
    /// run unfolds. Retrieve the probe (with everything it recorded) from
    /// [`VodSystem::run_traced`].
    ///
    /// # Panics
    /// If the configuration fails [`SystemConfig::validate`].
    pub fn with_probe(
        cfg: SystemConfig,
        library: impl Into<std::sync::Arc<Library>>,
        probe: P,
    ) -> Self {
        Self::build(cfg, library.into(), probe, None)
    }

    /// [`VodSystem::with_library_marginal`] with an observation `probe`:
    /// marginal-probe timing (terminals at or above `base` join in the
    /// late window) plus telemetry callbacks. The report stays
    /// bit-identical to the untraced marginal build's.
    ///
    /// # Panics
    /// If the configuration fails [`SystemConfig::validate`].
    pub fn with_probe_marginal(
        cfg: SystemConfig,
        library: impl Into<std::sync::Arc<Library>>,
        probe: P,
        base: u32,
    ) -> Self {
        Self::build(cfg, library.into(), probe, Some(base))
    }

    /// Swap this system's probe for `probe`, moving every other field
    /// unchanged. Observation-only by construction: the simulation state
    /// is untouched, so the run ahead is bit-identical to running under
    /// the old probe. This is how a worker attaches a live sampler to a
    /// system it just imported or forked under the default [`NoopProbe`].
    pub fn attach_probe<Q: Probe>(self, probe: Q) -> VodSystem<Q> {
        VodSystem {
            cfg: self.cfg,
            cal: self.cal,
            library: self.library,
            layout: self.layout,
            selector: self.selector,
            net: self.net,
            nodes: self.nodes,
            terminals: self.terminals,
            term_rngs: self.term_rngs,
            piggyback: self.piggyback,
            searches: self.searches,
            search_sessions: self.search_sessions,
            measuring: self.measuring,
            next_req_id: self.next_req_id,
            glitches_measured: self.glitches_measured,
            glitching_terminals: self.glitching_terminals,
            blocks_delivered: self.blocks_delivered,
            events_processed: self.events_processed,
            io_latency: self.io_latency,
            deadline_misses: self.deadline_misses,
            fault_actions: self.fault_actions,
            faults_fired: self.faults_fired,
            pump_scratch: self.pump_scratch,
            waiter_scratch: self.waiter_scratch,
            probe,
        }
    }

    /// Shared constructor. `base = Some(b)` selects marginal-probe timing
    /// (see [`VodSystem::with_library_marginal`]); `None` is the standard
    /// timeline where every terminal joins in `[0, stagger)`.
    fn build(
        cfg: SystemConfig,
        library: std::sync::Arc<Library>,
        probe: P,
        base: Option<u32>,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid configuration: {e}");
        }
        let layout = match cfg.placement {
            Placement::Striped => Layout::striped(cfg.topology, cfg.stripe_bytes, &library),
            Placement::NonStriped => {
                let mut rng = SimRng::stream(cfg.seed, 0x1a70);
                Layout::non_striped(cfg.topology, cfg.stripe_bytes, &library, &mut rng)
            }
            Placement::StripeGroup { width } => {
                Layout::stripe_group(cfg.topology, cfg.stripe_bytes, &library, width)
            }
        };
        let disk_params = cfg.disk.with_capacity_for(layout.max_disk_used_bytes());
        // Steady-state I/Os in flight per disk track the terminals served
        // per disk (each keeps a handful of demand + prefetch reads
        // queued); pre-size the per-disk maps so the hot path never
        // rehashes.
        let inflight_hint = (4 * cfg.n_terminals as usize)
            .div_ceil(cfg.topology.total_disks().max(1) as usize)
            .clamp(16, 4096);
        let nodes = (0..cfg.topology.nodes)
            .map(|n| {
                Node::new(
                    n,
                    cfg.topology.disks_per_node,
                    cfg.frames_per_node(),
                    cfg.policy,
                    cfg.cpu,
                    disk_params,
                    cfg.scheduler,
                    cfg.prefetch,
                    cfg.seed ^ 0xd15c,
                    inflight_hint,
                )
            })
            .collect();
        let terminals = (0..cfg.n_terminals)
            .map(|t| Terminal::new(t, cfg.terminal_memory_bytes))
            .collect();
        let selector = TitleSelector::new(cfg.access, cfg.n_videos);

        // Steady state holds a few pending events per terminal (wake,
        // in-flight I/O, prefetch); pre-size the kernel to skip its early
        // growth reallocations. `SPIFFI_CAL_KERNEL=heap` selects the
        // reference binary-heap kernel (benchmarks, determinism diffs);
        // pop order — and therefore every report — is byte-identical
        // either way.
        let mut cal =
            Calendar::with_capacity_and_kernel(8 * cfg.n_terminals as usize, kernel_from_env());
        // Staggered starts (§6): "the terminals start movies at random
        // intervals." Each terminal's join instant is the first draw of
        // its own RNG stream, so the set of other terminals never shifts
        // it. Under marginal timing, terminals at or above `base` join in
        // the last stagger-width slice of the warm-up instead — after the
        // snapshot point a warm fork resumes from.
        let mut term_rngs: Vec<SimRng> = (0..cfg.n_terminals)
            .map(|t| SimRng::stream(cfg.seed, TERMINAL_STREAM_BASE + t as u64))
            .collect();
        let late_join = late_join_open(&cfg.timing);
        for t in 0..cfg.n_terminals {
            let rng = &mut term_rngs[t as usize];
            let at = match base {
                Some(b) if t >= b => uniform_time(rng, late_join, late_join + cfg.timing.stagger),
                _ => uniform_time(rng, SimTime::ZERO, SimTime::ZERO + cfg.timing.stagger),
            };
            cal.schedule_at(at, Event::StartTerminal(t));
        }
        cal.schedule_at(SimTime::ZERO + cfg.timing.warmup, Event::BeginMeasure);

        // Fault perturbations fire as ordinary calendar events, so they
        // interleave with the workload in deterministic event order at
        // any thread or worker count, and pending firings serialize with
        // the rest of the calendar on snapshot.
        let fault_actions = fault_actions_of(&cfg);
        for (idx, (at, _)) in fault_schedule_of(&cfg).iter().enumerate() {
            cal.schedule_at(SimTime::ZERO + *at, Event::FaultFire(idx as u32));
        }

        let piggyback = cfg.piggyback_delay.map(Piggyback::new);

        let glitching_terminals = crate::bitset::TermBitset::with_capacity(cfg.n_terminals);
        // A pump can request at most one terminal buffer's worth of
        // blocks; size the scratch so the first pump already fits.
        let pump_cap = (cfg.terminal_memory_bytes / cfg.stripe_bytes.max(1) + 1) as usize;

        VodSystem {
            cfg,
            cal,
            library,
            layout,
            selector,
            net: Network::default(),
            nodes,
            terminals,
            term_rngs,
            piggyback,
            searches: std::collections::HashMap::new(),
            search_sessions: 0,
            measuring: false,
            next_req_id: 0,
            glitches_measured: 0,
            glitching_terminals,
            blocks_delivered: 0,
            events_processed: 0,
            io_latency: Histogram::new(0.005, 400),
            deadline_misses: 0,
            fault_actions,
            faults_fired: 0,
            pump_scratch: Vec::with_capacity(pump_cap),
            waiter_scratch: Vec::with_capacity(16),
            probe,
        }
    }

    /// Run until `warmup + measure` and return the measured report.
    pub fn run(self) -> RunReport {
        self.run_traced().0
    }

    /// [`VodSystem::run`], additionally returning the probe with whatever
    /// it recorded. The report is bit-identical to an untraced run's.
    pub fn run_traced(mut self) -> (RunReport, P) {
        let end = SimTime::ZERO + self.cfg.timing.total();
        while let Some((_, ev)) = self.cal.pop_until(end) {
            self.events_processed += 1;
            self.dispatch(ev);
        }
        self.cal.advance_to(end);
        if P::ENABLED {
            self.probe.run_end(end);
        }
        let report = self.collect_report(end);
        (report, self.probe)
    }

    /// Run as one replication of a capacity-search probe.
    ///
    /// A probe only needs the zero/non-zero glitch outcome, so the event
    /// loop stops at the first glitch that lands in the measurement window
    /// — a decision made purely in simulation order, so the truncated
    /// report is exactly as deterministic as a full [`VodSystem::run`],
    /// and a glitch-free replication returns a report bit-identical to
    /// `run()`'s.
    ///
    /// `cancel` coordinates replications of the *same* probe: a glitching
    /// replication publishes its index with `fetch_min`, and a replication
    /// abandons its run (returning a truncated report) only when a
    /// **lower** index has glitched. Replications at or below the lowest
    /// glitching index are therefore never interfered with, which is what
    /// keeps the probe's observable outcome — the reports up to and
    /// including that index — byte-identical at any thread count. Reports
    /// of higher-indexed, cancelled replications are wall-clock-dependent
    /// and must not feed into results.
    pub fn run_glitch_probe(self, cancel: &std::sync::atomic::AtomicU32, index: u32) -> RunReport {
        let abort = std::sync::atomic::AtomicBool::new(false);
        self.run_glitch_probe_abortable(cancel, index, &abort).0
    }

    /// [`VodSystem::run_glitch_probe`] with an additional search-wide abort
    /// flag, for speculative probes whose outcome the capacity search may
    /// stop needing altogether (the search answered while this count was
    /// still hypothetical).
    ///
    /// Returns `(report, clean)`. `clean` is true iff the run completed
    /// *deterministically* — it reached its own first measured glitch or
    /// the end of the measurement window without being truncated by the
    /// cancel flag or the abort flag. Only clean outcomes may be cached or
    /// counted: a truncated report reflects wall-clock scheduling, not the
    /// simulation.
    pub fn run_glitch_probe_abortable(
        self,
        cancel: &std::sync::atomic::AtomicU32,
        index: u32,
        abort: &std::sync::atomic::AtomicBool,
    ) -> (RunReport, bool) {
        let (report, clean, _) = self.run_glitch_probe_abortable_traced(cancel, index, abort);
        (report, clean)
    }

    /// [`VodSystem::run_glitch_probe_abortable`], additionally returning
    /// the probe with whatever it recorded (the worker's telemetry path).
    /// [`Probe::run_end`] fires at the stop instant on every exit path, so
    /// a sampler's final partial interval is clipped consistently whether
    /// the run glitched, completed, or was truncated.
    pub fn run_glitch_probe_abortable_traced(
        mut self,
        cancel: &std::sync::atomic::AtomicU32,
        index: u32,
        abort: &std::sync::atomic::AtomicBool,
    ) -> (RunReport, bool, P) {
        use std::sync::atomic::Ordering;
        // Poll the cancel flag once per this many events: rarely enough to
        // stay off the coherence traffic, often enough (< 1 ms of work) to
        // abandon a doomed run promptly.
        const CANCEL_POLL_MASK: u64 = 0xfff;
        let end = SimTime::ZERO + self.cfg.timing.total();
        if cancel.load(Ordering::Relaxed) < index || abort.load(Ordering::Relaxed) {
            let now = self.cal.now();
            if P::ENABLED {
                self.probe.run_end(now);
            }
            return (self.collect_report(now), false, self.probe);
        }
        while let Some((_, ev)) = self.cal.pop_until(end) {
            self.events_processed += 1;
            self.dispatch(ev);
            if self.glitches_measured > 0 {
                cancel.fetch_min(index, Ordering::Relaxed);
                let now = self.cal.now();
                if P::ENABLED {
                    self.probe.run_end(now);
                }
                return (self.collect_report(now), true, self.probe);
            }
            if self.events_processed & CANCEL_POLL_MASK == 0
                && (cancel.load(Ordering::Relaxed) < index || abort.load(Ordering::Relaxed))
            {
                let now = self.cal.now();
                if P::ENABLED {
                    self.probe.run_end(now);
                }
                return (self.collect_report(now), false, self.probe);
            }
        }
        self.cal.advance_to(end);
        if P::ENABLED {
            self.probe.run_end(end);
        }
        (self.collect_report(end), true, self.probe)
    }

    /// Events processed so far (monotone; carried into clones and forks).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Fault-scenario actions executed so far (a degrade window counts
    /// twice: once applying the scale, once restoring it).
    pub fn faults_fired(&self) -> u64 {
        self.faults_fired
    }

    /// Events currently pending in the calendar.
    pub fn pending_events(&self) -> usize {
        self.cal.len()
    }

    /// Events ever scheduled on the calendar (processed + pending +
    /// truncated; monotone, kernel-independent — the counted-work gates
    /// rely on this surviving kernel swaps unchanged).
    pub fn scheduled_events_total(&self) -> u64 {
        self.cal.scheduled_total()
    }

    /// The calendar kernel this system runs on.
    pub fn calendar_kernel(&self) -> spiffi_simcore::KernelKind {
        self.cal.kernel_kind()
    }

    /// Move the pending-event set onto `kind` mid-run. Pop order is
    /// preserved exactly, so the remainder of the run — and its report —
    /// is byte-identical to never having switched.
    pub fn set_calendar_kernel(&mut self, kind: spiffi_simcore::KernelKind) {
        self.cal.set_kernel(kind);
    }

    /// The snapshot boundary for marginal timing: the instant the late
    /// joiners' stagger window opens, one stagger before `BeginMeasure`.
    fn snapshot_time(&self) -> SimTime {
        late_join_open(&self.cfg.timing)
    }

    /// Replay the simulation up to (but excluding) the snapshot boundary
    /// `warmup - stagger`, leaving the system in the exact state a
    /// from-scratch marginal run passes through at that instant. Capture a
    /// snapshot by cloning the system afterwards; extend it with
    /// [`VodSystem::fork_to`].
    ///
    /// Only meaningful on a system built with
    /// [`VodSystem::with_library_marginal`] (or an equivalent timeline):
    /// under standard timing the warm-up before the boundary is not
    /// reusable, because additional terminals would have joined inside it.
    pub fn replay_to_snapshot(&mut self) {
        let s = self.snapshot_time();
        // pop_before locates the minimum once per event (the peek-compare
        // result stays memoized inside the kernel when the bound refuses
        // it), instead of the peek-then-pop double traversal.
        while let Some((_, ev)) = self.cal.pop_before(s) {
            self.events_processed += 1;
            self.dispatch(ev);
        }
        self.cal.advance_to(s);
    }

    /// Fork a replayed snapshot out to `n_terminals`: deep-clone the
    /// simulation state and add the marginal terminals
    /// `self.n_terminals..n_terminals`, each joining at an instant drawn
    /// from its own fresh RNG stream, uniformly inside the late-join
    /// window `[warmup - stagger, warmup)`. Because surviving terminals
    /// own their RNG streams and the marginal joins land strictly after
    /// every replayed event, the fork's event history is bit-identical to
    /// a from-scratch [`VodSystem::with_library_marginal`] run at
    /// `n_terminals` (up to ties at exact nanoseconds between a marginal
    /// join and a pending event, which continuous draws make a
    /// measure-zero, seed-deterministic coincidence). Retiring terminals
    /// is not supported — probe below the snapshot's count from scratch.
    ///
    /// # Panics
    /// If `n_terminals` is below the snapshot's terminal count.
    pub fn fork_to(&self, n_terminals: u32) -> Self
    where
        P: Clone,
    {
        assert!(
            n_terminals >= self.cfg.n_terminals,
            "fork_to({n_terminals}) cannot retire terminals from a {}-terminal snapshot",
            self.cfg.n_terminals
        );
        let mut sys = self.clone();
        let s = sys.snapshot_time();
        let added = (n_terminals - sys.cfg.n_terminals) as usize;
        sys.terminals.reserve(added);
        sys.term_rngs.reserve(added);
        for t in sys.cfg.n_terminals..n_terminals {
            let mut rng = SimRng::stream(sys.cfg.seed, TERMINAL_STREAM_BASE + t as u64);
            let at = uniform_time(&mut rng, s, s + sys.cfg.timing.stagger);
            sys.cal.schedule_at(at, Event::StartTerminal(t));
            sys.terminals
                .push(Terminal::new(t, sys.cfg.terminal_memory_bytes));
            sys.term_rngs.push(rng);
        }
        sys.cfg.n_terminals = n_terminals;
        sys
    }

    fn dispatch(&mut self, ev: Event) {
        if P::ENABLED {
            self.probe.sim_event(self.cal.now(), event_kind(&ev));
        }
        match ev {
            Event::StartTerminal(t) => self.start_first_title(t),
            Event::Wake { term, gen } => {
                if self.terminals[term as usize].gen() == gen {
                    self.pump_terminal(term);
                }
            }
            Event::RequestArrive {
                term,
                epoch,
                block,
                deadline,
            } => {
                // The owning node is a pure function of the placement;
                // recomputing it here keeps the event 8 bytes slimmer.
                let node = self.layout.locate(block).disk.node.0;
                self.submit_cpu(
                    node,
                    self.cfg.cpu.recv_msg_instr,
                    CpuJob::RecvRequest {
                        term,
                        epoch,
                        block,
                        deadline,
                    },
                );
            }
            Event::ReplyArrive { term, epoch, block } => {
                let video = self.library.get(block.video);
                let fresh = self.terminals[term as usize].on_block_arrival(
                    video,
                    self.cfg.stripe_bytes,
                    block.index,
                    epoch,
                );
                if fresh {
                    self.pump_terminal(term);
                }
            }
            Event::CpuDone { node } => {
                let now = self.cal.now();
                let started = if P::ENABLED {
                    self.nodes[node as usize].cpu.running_since()
                } else {
                    None
                };
                let (job, next) = self.nodes[node as usize].cpu.finish(now);
                if P::ENABLED {
                    let start = started.expect("CpuDone for an idle CPU");
                    self.probe.cpu_span(node, start, now, cpu_job_kind(&job));
                }
                if let Some(d) = next {
                    self.cal.schedule_at(now + d, Event::CpuDone { node });
                }
                self.handle_cpu_job(node, job);
            }
            Event::DiskDone { node, disk } => {
                // A completion from a disk that died mid-transfer is void:
                // its read was re-dispatched to the failover sibling when
                // the disk was killed.
                if self.nodes[node as usize].disks[disk as usize].alive {
                    self.handle_disk_done(node, disk);
                }
            }
            Event::PrefetchRelease { node, disk, gen } => {
                let unit = &mut self.nodes[node as usize].disks[disk as usize];
                if unit.release_gen == gen {
                    unit.release_timer = None;
                    self.prefetch_kick(node, disk);
                }
            }
            Event::PiggybackFire { video } => {
                let pb = self
                    .piggyback
                    .as_mut()
                    .expect("piggyback fire without manager");
                let (leader, _followers) = pb.fire(video);
                self.begin_stream(leader, video);
            }
            Event::BeginMeasure => self.begin_measure(),
            Event::UserSeek { term, frame } => self.user_seek(term, frame),
            Event::SearchStep { term, session } => self.search_step(term, session),
            Event::SmoothSearchBegin {
                term,
                forward,
                end_at,
            } => self.smooth_search_begin(term, forward, end_at),
            Event::SmoothSearchEnd { term } => self.smooth_search_end(term),
            Event::FaultFire(idx) => self.fire_fault(idx),
        }
    }

    // ----- terminal side -------------------------------------------------

    /// Schedule a fast-forward/rewind for terminal `term` at time `at`
    /// (§8.1): the terminal seeks to `frame` of whatever title it is then
    /// watching, discards its buffers, and re-primes from the new
    /// position. Call before [`VodSystem::run`].
    pub fn schedule_user_seek(&mut self, at: SimTime, term: u32, frame: u64) {
        assert!(term < self.cfg.n_terminals, "no terminal {term}");
        self.cal.schedule_at(at, Event::UserSeek { term, frame });
    }

    /// Begin a skip-based visual search (§8.1) on terminal `term` at time
    /// `at`: "the terminal can skip forward or backward through the movie
    /// showing one or two seconds out of every several seconds of video
    /// data. Since the skipped video segments need not be read, this
    /// scheme will not significantly increase the load on the video
    /// server." The terminal shows `search.show` of content, jumps over
    /// `search.skip`, and repeats until `at + duration`, then resumes
    /// normal playback from wherever the search landed. Call before
    /// [`VodSystem::run`].
    pub fn schedule_visual_search(
        &mut self,
        at: SimTime,
        term: u32,
        search: VisualSearch,
        duration: spiffi_simcore::SimDuration,
    ) {
        assert!(term < self.cfg.n_terminals, "no terminal {term}");
        assert!(search.show > spiffi_simcore::SimDuration::ZERO);
        self.search_sessions += 1;
        let session = self.search_sessions;
        self.searches.insert(
            term,
            SearchState {
                session,
                search,
                end_at: at + duration,
                started: false,
            },
        );
        self.cal
            .schedule_at(at, Event::SearchStep { term, session });
    }

    fn search_step(&mut self, term: u32, session: u64) {
        let now = self.cal.now();
        let Some(state) = self.searches.get_mut(&term) else {
            return;
        };
        if state.session != session {
            return; // superseded by a newer search
        }
        if now >= state.end_at {
            // Search over: normal playback continues from here.
            self.searches.remove(&term);
            return;
        }
        let Some(video) = self.terminals[term as usize].video() else {
            self.searches.remove(&term);
            return;
        };
        let v = self.library.get(video);
        let fps = v.params().fps as u64;
        let here = self.terminals[term as usize].current_frame().unwrap_or(0);
        let skip_frames = (state.search.skip.0 as u128 * fps as u128 / 1_000_000_000) as u64;
        let target = if state.started {
            if state.search.forward {
                here.saturating_add(skip_frames)
            } else {
                here.saturating_sub(skip_frames)
            }
        } else {
            state.started = true;
            here // first step: just begin showing from the current spot
        };
        let show = state.search.show;
        if target >= v.num_frames().saturating_sub(1) || (!state.search.forward && target == 0) {
            // Ran off the end of the title: stop searching there.
            self.searches.remove(&term);
            self.user_seek(term, target.min(v.num_frames().saturating_sub(1)));
            return;
        }
        self.user_seek(term, target);
        self.cal
            .schedule_at(now + show, Event::SearchStep { term, session });
    }

    /// Begin a smooth (search-version) fast-forward or rewind (§8.1's
    /// second scheme) on terminal `term` at time `at`, returning to normal
    /// playback after `duration`. Requires
    /// [`SystemConfig::search_speedup`](crate::config::SystemConfig) to be
    /// set. "The search versions of the movie will provide a smooth,
    /// constant rate video stream similar to what a typical VCR produces."
    /// Call before [`VodSystem::run`].
    pub fn schedule_smooth_search(
        &mut self,
        at: SimTime,
        term: u32,
        forward: bool,
        duration: spiffi_simcore::SimDuration,
    ) {
        assert!(term < self.cfg.n_terminals, "no terminal {term}");
        assert!(
            self.cfg.search_speedup.is_some(),
            "smooth search requires SystemConfig::search_speedup"
        );
        self.cal.schedule_at(
            at,
            Event::SmoothSearchBegin {
                term,
                forward,
                end_at: at + duration,
            },
        );
    }

    fn smooth_search_begin(&mut self, term: u32, forward: bool, end_at: SimTime) {
        let speedup = self
            .cfg
            .search_speedup
            .expect("smooth search without search versions") as u64;
        let Some(video) = self.terminals[term as usize].video() else {
            return;
        };
        let Some(search) = self.library.search_version_of(video) else {
            return; // already on a search version (double press): ignore
        };
        let here = self.terminals[term as usize].current_frame().unwrap_or(0);
        let sv = self.library.get(search);
        // Map the current position into the compressed timeline. Rewind
        // plays the search version too (we do not model reverse display;
        // the subscriber watches the preview stream while the position
        // rewinds at speed-up rate when they press play again — for the
        // simulator's purposes both directions read the search version
        // forward from the mapped position).
        let target = (here / speedup).min(sv.num_frames().saturating_sub(1));
        let _ = forward;
        self.terminals[term as usize].start_video(sv, self.cfg.stripe_bytes, target, Vec::new());
        self.pump_terminal(term);
        self.cal
            .schedule_at(end_at, Event::SmoothSearchEnd { term });
    }

    fn smooth_search_end(&mut self, term: u32) {
        let speedup = self
            .cfg
            .search_speedup
            .expect("smooth search without search versions") as u64;
        let Some(video) = self.terminals[term as usize].video() else {
            return;
        };
        let Some(normal) = self.library.normal_version_of(video) else {
            return; // the search ended some other way (title rollover)
        };
        let here = self.terminals[term as usize].current_frame().unwrap_or(0);
        let nv = self.library.get(normal);
        let target = (here * speedup).min(nv.num_frames().saturating_sub(1));
        self.terminals[term as usize].start_video(nv, self.cfg.stripe_bytes, target, Vec::new());
        self.pump_terminal(term);
    }

    fn user_seek(&mut self, term: u32, frame: u64) {
        let Some(video) = self.terminals[term as usize].video() else {
            return; // not watching anything yet — ignore the keypress
        };
        let v = self.library.get(video);
        let frame = frame.min(v.num_frames().saturating_sub(1));
        // Re-prime from the new position; in-flight replies for the old
        // position are invalidated by the epoch bump.
        self.terminals[term as usize].start_video(v, self.cfg.stripe_bytes, frame, Vec::new());
        self.pump_terminal(term);
    }

    /// A terminal comes online. Under
    /// [`InitialPosition::UniformWithinVideo`](crate::config::InitialPosition)
    /// its first viewing begins at a random position — the steady state an
    /// hours-long run converges to — and bypasses the piggyback manager
    /// (one cannot join a stream mid-video).
    fn start_first_title(&mut self, t: u32) {
        match self.cfg.initial_position {
            crate::config::InitialPosition::Start => self.start_next_title(t),
            crate::config::InitialPosition::UniformWithinVideo => {
                let video = self.selector.select(&mut self.term_rngs[t as usize]);
                let frames = self.library.get(video).num_frames();
                let frame = self.term_rngs[t as usize].u64_below(frames.max(1));
                self.begin_stream_at(t, video, frame);
            }
        }
    }

    /// Select (and possibly batch) the next title for terminal `t`.
    fn start_next_title(&mut self, t: u32) {
        let video = self.selector.select(&mut self.term_rngs[t as usize]);
        match self.piggyback.as_mut() {
            None => self.begin_stream(t, video),
            Some(pb) => {
                let now = self.cal.now();
                match pb.request_start(t, video, now) {
                    StartDecision::OpenedBatch { fire_at } => {
                        if P::ENABLED {
                            self.probe.terminal_event(
                                now,
                                t,
                                TerminalEvent::PiggybackOpened { video: video.0 },
                            );
                        }
                        self.cal
                            .schedule_at(fire_at, Event::PiggybackFire { video });
                    }
                    StartDecision::JoinedBatch => {
                        if P::ENABLED {
                            self.probe.terminal_event(
                                now,
                                t,
                                TerminalEvent::PiggybackJoined { video: video.0 },
                            );
                        }
                    }
                    // Duplicate request or an active follower: the terminal
                    // is already accounted for (in the batch or behind its
                    // leader) and needs no new event.
                    StartDecision::Ignored => {}
                }
            }
        }
    }

    /// Begin streaming `video` on terminal `t` from its first frame.
    fn begin_stream(&mut self, t: u32, video: VideoId) {
        self.begin_stream_at(t, video, 0);
    }

    /// Begin streaming `video` on terminal `t` from `start_frame`.
    fn begin_stream_at(&mut self, t: u32, video: VideoId, start_frame: u64) {
        let mut pauses = self.draw_pause_plan(t, video);
        // Pauses scheduled before the starting position already "happened";
        // keeping them would stall playback the moment it starts.
        pauses.retain(|&(frame, _)| frame >= start_frame);
        let v = self.library.get(video);
        self.terminals[t as usize].start_video(v, self.cfg.stripe_bytes, start_frame, pauses);
        self.pump_terminal(t);
    }

    /// Draw the pause plan for one viewing (§8.1): pause instants form a
    /// Poisson process over the title at the configured mean rate, with
    /// exponential durations.
    fn draw_pause_plan(
        &mut self,
        t: u32,
        video: VideoId,
    ) -> Vec<(u64, spiffi_simcore::SimDuration)> {
        let Some(pc) = self.cfg.pause else {
            return Vec::new();
        };
        let frames = self.library.get(video).num_frames();
        let mean_gap_frames = frames as f64 / pc.mean_pauses_per_video;
        let gap = Exponential::new(mean_gap_frames);
        let dur = Exponential::new(pc.mean_duration.as_secs_f64());
        let rng = &mut self.term_rngs[t as usize];
        let mut plan = Vec::new();
        let mut at = 0.0;
        loop {
            at += gap.sample(rng);
            let frame = at as u64;
            if frame >= frames {
                break;
            }
            plan.push((
                frame,
                spiffi_simcore::SimDuration::from_secs_f64(dur.sample(rng)),
            ));
        }
        plan
    }

    /// Pump a terminal and apply its decisions: send requests, schedule the
    /// wake, count glitches, and roll over finished titles.
    fn pump_terminal(&mut self, t: u32) {
        let now = self.cal.now();
        let vid = self.terminals[t as usize]
            .video()
            .expect("pumping a terminal with no video");
        let scratch = std::mem::take(&mut self.pump_scratch);
        let pump = {
            let video = self.library.get(vid);
            self.terminals[t as usize].pump_reusing(video, self.cfg.stripe_bytes, now, scratch)
        };

        if pump.glitched && self.measuring {
            self.glitches_measured += 1;
            self.glitching_terminals.insert(t);
        }
        if P::ENABLED {
            if pump.glitched {
                self.probe.terminal_event(now, t, TerminalEvent::Glitched);
            }
            if pump.started_playing {
                self.probe
                    .terminal_event(now, t, TerminalEvent::StartedPlaying);
            }
            if pump.paused {
                self.probe.terminal_event(now, t, TerminalEvent::Paused);
            }
            if pump.finished {
                self.probe
                    .terminal_event(now, t, TerminalEvent::FinishedTitle);
            }
        }

        for index in &pump.requests {
            self.send_request(
                t,
                BlockAddr {
                    video: vid,
                    index: *index,
                },
            );
        }

        if let Some(wake_at) = pump.wake_at {
            let gen = self.terminals[t as usize].gen();
            self.cal
                .schedule_at(wake_at.max(now), Event::Wake { term: t, gen });
        }

        // Reclaim the request buffer before the finished path, which pumps
        // other terminals (piggyback group members) reentrantly.
        self.pump_scratch = pump.requests;

        if pump.finished {
            self.handle_video_finished(t);
        }
    }

    /// A title completed on terminal `t`: dissolve its piggyback group (if
    /// any) and have every member pick a new title ("When a terminal
    /// finishes one movie, it randomly selects a new video and immediately
    /// begins playing it", §6).
    fn handle_video_finished(&mut self, t: u32) {
        let members = match self.piggyback.as_mut() {
            Some(pb) => pb.dissolve(t),
            None => vec![t],
        };
        for m in members {
            self.start_next_title(m);
        }
    }

    /// Transmit a read request from terminal `t` for `block`.
    fn send_request(&mut self, t: u32, block: BlockAddr) {
        let now = self.cal.now();
        let video = self.library.get(block.video);
        let deadline = self.terminals[t as usize].deadline_for_block(
            video,
            self.cfg.stripe_bytes,
            block.index,
            now,
        );
        let epoch = self.terminals[t as usize].epoch();
        let delay = self.net.send(now, REQUEST_MSG_BYTES);
        if P::ENABLED {
            self.probe.net_send(
                now,
                NetSend {
                    kind: NetMsgKind::Request,
                    bytes: REQUEST_MSG_BYTES,
                    delay,
                },
            );
        }
        self.cal.schedule_at(
            now + delay,
            Event::RequestArrive {
                term: t,
                epoch,
                block,
                deadline,
            },
        );
    }

    // ----- node side ------------------------------------------------------

    /// Put a job on a node's CPU, scheduling its completion if the CPU was
    /// idle.
    fn submit_cpu(&mut self, node: u32, instr: u64, job: CpuJob) {
        let now = self.cal.now();
        if let Some(d) = self.nodes[node as usize].cpu.submit(now, instr, job) {
            self.cal.schedule_at(now + d, Event::CpuDone { node });
        }
    }

    fn handle_cpu_job(&mut self, node: u32, job: CpuJob) {
        match job {
            CpuJob::RecvRequest {
                term,
                epoch,
                block,
                deadline,
            } => self.handle_request(node, term, epoch, block, deadline),
            CpuJob::StartIo { disk, req } => {
                // The target may have died while this job sat on the CPU
                // queue; its I/O context was migrated to the failover
                // sibling when the disk was killed, so the request simply
                // follows it there.
                let disk = self.route_disk(node, disk);
                self.nodes[node as usize].disks[disk as usize]
                    .sched
                    .push(req);
                self.try_start_disk(node, disk);
            }
            CpuJob::SendReply {
                term,
                epoch,
                block,
                len,
            } => {
                let now = self.cal.now();
                let delay = self.net.send(now, len + REPLY_HEADER_BYTES);
                if P::ENABLED {
                    self.probe.net_send(
                        now,
                        NetSend {
                            kind: NetMsgKind::Reply,
                            bytes: len + REPLY_HEADER_BYTES,
                            delay,
                        },
                    );
                }
                if self.measuring {
                    self.blocks_delivered += 1;
                }
                self.cal
                    .schedule_at(now + delay, Event::ReplyArrive { term, epoch, block });
            }
        }
    }

    /// Core request-processing path (runs after the receive CPU cost).
    fn handle_request(
        &mut self,
        node: u32,
        term: u32,
        epoch: u16,
        block: BlockAddr,
        deadline: SimTime,
    ) {
        let token = waiter_token(term, epoch);
        let loc = self.layout.locate(block);
        let d = self.route_disk(node, loc.disk.disk);
        let n = node as usize;
        let looked_up = self.nodes[n].pool.lookup(block, Some(term));
        if P::ENABLED {
            let now = self.cal.now();
            let shared = self.nodes[n].pool.last_lookup_shared();
            match looked_up {
                LookupResult::Resident(_) => {
                    self.probe.pool_event(now, node, PoolEvent::Hit { shared });
                }
                LookupResult::InFlight(_) => {
                    self.probe
                        .pool_event(now, node, PoolEvent::InFlightHit { shared });
                }
                LookupResult::Miss => {}
            }
        }
        match looked_up {
            LookupResult::Resident(f) => {
                self.nodes[n].pool.record_reference(f, term);
                self.submit_cpu(
                    node,
                    self.cfg.cpu.send_msg_instr,
                    CpuJob::SendReply {
                        term,
                        epoch,
                        block,
                        len: loc.len,
                    },
                );
            }
            LookupResult::InFlight(f) => {
                self.nodes[n].pool.add_waiter(f, token);
                // Escalate a still-queued prefetch to the real deadline so
                // the real-time scheduler treats it with the urgency of the
                // real request it now serves.
                let unit = &mut self.nodes[n].disks[d as usize];
                if let Some(&rid) = unit.by_block.get(&block) {
                    if let Some(mut req) = unit.sched.remove(rid) {
                        req.deadline = Some(req.deadline.map_or(deadline, |old| old.min(deadline)));
                        req.stream = Some(StreamId(term));
                        unit.sched.push(req);
                    }
                }
            }
            LookupResult::Miss => {
                // A queued (unissued) prefetch for this block is now
                // pointless: the demand read supersedes it.
                self.nodes[n].disks[d as usize].prefetch.cancel(block);
                match self.nodes[n].pool.allocate(block, false) {
                    Some(f) => {
                        if P::ENABLED {
                            let evicted = self.nodes[n].pool.last_alloc_evicted();
                            self.probe.pool_event(
                                self.cal.now(),
                                node,
                                PoolEvent::Miss { evicted },
                            );
                        }
                        self.nodes[n].pool.add_waiter(f, token);
                        self.issue_io(node, d, block, f, Some(deadline), Some(term), false);
                    }
                    None => {
                        if P::ENABLED {
                            self.probe
                                .pool_event(self.cal.now(), node, PoolEvent::AllocFailure);
                        }
                        self.nodes[n].pending_reads.push_back(PendingRead {
                            term,
                            epoch,
                            block,
                            deadline,
                        });
                    }
                }
            }
        }
        // §5.2.3: every real reference triggers a background prefetch of
        // the next stripe block on the same disk.
        self.enqueue_prefetch_after(node, block, deadline, term);
    }

    /// Queue the standard follow-on prefetch for the block after `block`
    /// on the same disk.
    fn enqueue_prefetch_after(
        &mut self,
        node: u32,
        block: BlockAddr,
        deadline: SimTime,
        term: u32,
    ) {
        let Some(next) = self.layout.next_block_same_disk(block) else {
            return;
        };
        let n = node as usize;
        if self.nodes[n].pool.lookup(next, None) != LookupResult::Miss {
            return;
        }
        let d = self.route_disk(node, self.layout.locate(next).disk.disk);
        // Estimated deadline: the real request for `next` trails this one
        // by the playback time of the intervening stripe blocks.
        let stride = (next.index - block.index) as u64;
        let stride_time = spiffi_simcore::SimDuration::from_secs_f64(
            stride as f64 * self.cfg.stripe_bytes as f64 * 8.0 / self.cfg.video.bit_rate_bps as f64,
        );
        self.nodes[n].disks[d as usize]
            .prefetch
            .enqueue(PrefetchRequest {
                block: next,
                estimated_deadline: deadline + stride_time,
                stream: term,
            });
        self.prefetch_kick(node, d);
    }

    /// Let the prefetch processes of disk `(node, disk)` issue as much as
    /// the strategy allows right now.
    fn prefetch_kick(&mut self, node: u32, disk: u32) {
        let now = self.cal.now();
        let n = node as usize;
        if !self.nodes[n].disks[disk as usize].alive {
            return;
        }
        loop {
            let decision = self.nodes[n].disks[disk as usize].prefetch.try_issue(now);
            match decision {
                IssueDecision::Idle => break,
                IssueDecision::NotYet { release_at } => {
                    // Arm (or re-arm) the release timer only when the queue
                    // head's release time moved earlier; re-arming on every
                    // kick would invalidate timers faster than they fire.
                    let unit = &mut self.nodes[n].disks[disk as usize];
                    let must_arm = unit.release_timer.is_none_or(|armed| release_at < armed);
                    if must_arm {
                        unit.release_gen += 1;
                        unit.release_timer = Some(release_at);
                        let gen = unit.release_gen;
                        self.cal.schedule_at(
                            release_at.max(now),
                            Event::PrefetchRelease { node, disk, gen },
                        );
                    }
                    break;
                }
                IssueDecision::Issue { request, deadline } => {
                    // The block may have been fetched (or be in flight) by
                    // the time this prefetch reaches the head of the queue.
                    if self.nodes[n].pool.lookup(request.block, None) != LookupResult::Miss {
                        self.nodes[n].disks[disk as usize].prefetch.abort();
                        continue;
                    }
                    match self.nodes[n].pool.allocate(request.block, true) {
                        None => {
                            // No frame available: drop the prefetch rather
                            // than stall real work.
                            if P::ENABLED {
                                self.probe.pool_event(now, node, PoolEvent::AllocFailure);
                            }
                            self.nodes[n].disks[disk as usize].prefetch.abort();
                            continue;
                        }
                        Some(f) => {
                            if P::ENABLED {
                                let evicted = self.nodes[n].pool.last_alloc_evicted();
                                self.probe.pool_event(
                                    now,
                                    node,
                                    PoolEvent::PrefetchAlloc { evicted },
                                );
                            }
                            self.issue_io(
                                node,
                                disk,
                                request.block,
                                f,
                                deadline,
                                Some(request.stream),
                                true,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Charge the start-I/O CPU cost and enqueue the disk request.
    #[allow(clippy::too_many_arguments)]
    fn issue_io(
        &mut self,
        node: u32,
        disk: u32,
        block: BlockAddr,
        frame: spiffi_bufferpool::FrameId,
        deadline: Option<SimTime>,
        stream: Option<u32>,
        is_prefetch: bool,
    ) {
        let rid = RequestId(self.next_req_id);
        self.next_req_id += 1;
        let loc = self.layout.locate(block);
        let unit = &mut self.nodes[node as usize].disks[disk as usize];
        let cylinder = unit.disk.params().cylinder_of(loc.disk_byte);
        let req = DiskRequest {
            id: rid,
            cylinder,
            deadline,
            stream: stream.map(StreamId),
            is_prefetch,
        };
        let now = self.cal.now();
        unit.inflight.insert(
            rid,
            IoCtx {
                block,
                frame,
                is_prefetch,
                issued_at: now,
                deadline,
            },
        );
        unit.by_block.insert(block, rid);
        self.submit_cpu(
            node,
            self.cfg.cpu.start_io_instr,
            CpuJob::StartIo { disk, req },
        );
    }

    /// If the disk is idle and work is queued, start the next transfer.
    fn try_start_disk(&mut self, node: u32, disk: u32) {
        let now = self.cal.now();
        let unit = &mut self.nodes[node as usize].disks[disk as usize];
        if !unit.alive || unit.current.is_some() {
            return;
        }
        let head = unit.disk.head_cylinder();
        let Some(req) = unit.sched.pop_next(now, head) else {
            return;
        };
        let ctx = unit.inflight[&req.id];
        let loc = self.layout.locate(ctx.block);
        let breakdown = unit.disk.read(loc.disk_byte, loc.len, &mut unit.rng);
        unit.current = Some(req.id);
        if P::ENABLED {
            let queue_depth = unit.sched.len() as u32;
            self.probe.disk_io_start(
                now,
                DiskIoStart {
                    node,
                    disk,
                    queue_depth,
                    is_prefetch: ctx.is_prefetch,
                    service: breakdown,
                },
            );
        }
        self.cal
            .schedule_at(now + breakdown.total(), Event::DiskDone { node, disk });
    }

    /// A disk transfer finished: publish the page, wake waiters, restart
    /// the pipeline.
    fn handle_disk_done(&mut self, node: u32, disk: u32) {
        let n = node as usize;
        let (ctx, len) = {
            let unit = &mut self.nodes[n].disks[disk as usize];
            let rid = unit.current.take().expect("disk-done with idle disk");
            let ctx = unit
                .inflight
                .remove(&rid)
                .expect("disk-done without context");
            unit.by_block.remove(&ctx.block);
            (ctx, self.layout.locate(ctx.block).len)
        };
        let now = self.cal.now();
        if P::ENABLED {
            let slack = ctx.deadline.map(|d| {
                (d.0 as i128 - now.0 as i128).clamp(i64::MIN as i128, i64::MAX as i128) as i64
            });
            self.probe.disk_io_done(
                now,
                DiskIoDone {
                    node,
                    disk,
                    is_prefetch: ctx.is_prefetch,
                    latency: now.saturating_since(ctx.issued_at),
                    deadline_slack_ns: slack,
                },
            );
        }
        if self.measuring && !ctx.is_prefetch {
            self.io_latency
                .add(now.saturating_since(ctx.issued_at).as_secs_f64());
            if let Some(d) = ctx.deadline {
                // Only *achievable* deadlines count as misses: the first
                // block of a (re)priming session carries deadline = issue
                // time ("display starts now"), which no disk can meet.
                if now > d && d > ctx.issued_at {
                    self.deadline_misses += 1;
                }
            }
        }
        let mut waiters = std::mem::take(&mut self.waiter_scratch);
        self.nodes[n].pool.complete_io_into(ctx.frame, &mut waiters);
        for &token in &waiters {
            let (term, epoch) = decode_waiter(token);
            self.nodes[n].pool.record_reference(ctx.frame, term);
            self.submit_cpu(
                node,
                self.cfg.cpu.send_msg_instr,
                CpuJob::SendReply {
                    term,
                    epoch,
                    block: ctx.block,
                    len,
                },
            );
        }
        self.waiter_scratch = waiters;
        if ctx.is_prefetch {
            self.nodes[n].disks[disk as usize].prefetch.complete();
        }
        // Frames may have become evictable: retry reads stalled on
        // allocation, then let the prefetcher and the disk continue.
        self.retry_pending(node);
        self.prefetch_kick(node, disk);
        self.try_start_disk(node, disk);
    }

    /// Retry demand reads that previously failed to get a buffer frame.
    fn retry_pending(&mut self, node: u32) {
        let n = node as usize;
        while let Some(pr) = self.nodes[n].pending_reads.front().copied() {
            let token = waiter_token(pr.term, pr.epoch);
            match self.nodes[n].pool.lookup(pr.block, None) {
                LookupResult::Resident(f) => {
                    self.nodes[n].pending_reads.pop_front();
                    self.nodes[n].pool.record_reference(f, pr.term);
                    let len = self.layout.locate(pr.block).len;
                    self.submit_cpu(
                        node,
                        self.cfg.cpu.send_msg_instr,
                        CpuJob::SendReply {
                            term: pr.term,
                            epoch: pr.epoch,
                            block: pr.block,
                            len,
                        },
                    );
                }
                LookupResult::InFlight(f) => {
                    self.nodes[n].pending_reads.pop_front();
                    self.nodes[n].pool.add_waiter(f, token);
                }
                LookupResult::Miss => match self.nodes[n].pool.allocate(pr.block, false) {
                    Some(f) => {
                        if P::ENABLED {
                            let evicted = self.nodes[n].pool.last_alloc_evicted();
                            self.probe.pool_event(
                                self.cal.now(),
                                node,
                                PoolEvent::Miss { evicted },
                            );
                        }
                        self.nodes[n].pending_reads.pop_front();
                        self.nodes[n].pool.add_waiter(f, token);
                        let d = self.route_disk(node, self.layout.locate(pr.block).disk.disk);
                        self.issue_io(
                            node,
                            d,
                            pr.block,
                            f,
                            Some(pr.deadline),
                            Some(pr.term),
                            false,
                        );
                    }
                    None => break,
                },
            }
        }
    }

    // ----- fault scenarios ------------------------------------------------

    /// The disk that demand and prefetch I/O aimed at `(node, disk)`
    /// should actually go to: the disk itself while it lives, else its
    /// failover sibling.
    fn route_disk(&self, node: u32, disk: u32) -> u32 {
        if self.nodes[node as usize].disks[disk as usize].alive {
            disk
        } else {
            self.failover_target(node, disk)
        }
    }

    /// The next living disk after `disk` on `node`, wrapping — chained
    /// deaths keep resolving as long as one sibling survives.
    ///
    /// # Panics
    /// If every disk on the node is dead; [`SystemConfig::validate`]
    /// rejects scenarios that could get here.
    fn failover_target(&self, node: u32, disk: u32) -> u32 {
        let dpn = self.cfg.topology.disks_per_node;
        (1..dpn)
            .map(|off| (disk + off) % dpn)
            .find(|&d| self.nodes[node as usize].disks[d as usize].alive)
            .expect("fault scenario left a node with no living disk")
    }

    /// Execute action `idx` of the scenario table.
    fn fire_fault(&mut self, idx: u32) {
        self.faults_fired += 1;
        match self.fault_actions[idx as usize] {
            FaultAction::SetLatencyScale { node, disk, pct } => {
                self.nodes[node as usize].disks[disk as usize]
                    .disk
                    .set_latency_scale_pct(pct);
                if P::ENABLED {
                    self.probe.fault_event(
                        self.cal.now(),
                        FaultEvent::DiskDegraded {
                            node,
                            disk,
                            latency_scale_pct: pct,
                        },
                    );
                }
            }
            FaultAction::KillDisk { node, disk } => self.kill_disk(node, disk),
            FaultAction::Abandon { every } => self.abandon_burst(every),
        }
    }

    /// Permanently fail `(node, disk)`. Every queued and in-service read
    /// is re-dispatched to the failover sibling — disk geometry is
    /// identical across a node, so cylinder numbers carry over — and all
    /// future I/O for the dead disk's blocks routes there too. Issued
    /// prefetches are demoted to demand reads: their pool frames may
    /// already hold waiters that must still be fed, so the reads cannot
    /// simply be dropped. The read on the platters at death is lost and
    /// reissued from scratch (its eventual `DiskDone` is void).
    fn kill_disk(&mut self, node: u32, disk: u32) {
        let now = self.cal.now();
        let n = node as usize;
        self.nodes[n].disks[disk as usize].alive = false;
        let target = self.failover_target(node, disk);
        let (mut moved, mut requeue) = {
            let unit = &mut self.nodes[n].disks[disk as usize];
            let head = unit.disk.head_cylinder();
            let mut requeue = unit.sched.drain(now, head);
            if let Some(rid) = unit.current.take() {
                let ctx = unit.inflight[&rid];
                let loc = self.layout.locate(ctx.block);
                requeue.push(DiskRequest {
                    id: rid,
                    cylinder: unit.disk.params().cylinder_of(loc.disk_byte),
                    deadline: ctx.deadline,
                    stream: None,
                    is_prefetch: false,
                });
            }
            // A pending delayed-prefetch release must not kick a dead
            // disk; the queued (unissued) prefetches behind it are
            // frameless and simply never issue.
            unit.release_gen += 1;
            unit.release_timer = None;
            let mut moved: Vec<(RequestId, IoCtx)> = unit.inflight.drain().collect();
            // Map drain order is an implementation detail; re-insert in
            // request order so the failover is bit-reproducible.
            moved.sort_unstable_by_key(|(rid, _)| rid.0);
            unit.by_block.clear();
            (moved, requeue)
        };
        for (rid, ctx) in &mut moved {
            if ctx.is_prefetch {
                self.nodes[n].disks[disk as usize].prefetch.complete();
                ctx.is_prefetch = false;
            }
            let tu = &mut self.nodes[n].disks[target as usize];
            tu.inflight.insert(*rid, *ctx);
            tu.by_block.insert(ctx.block, *rid);
        }
        for req in &mut requeue {
            req.is_prefetch = false;
            self.nodes[n].disks[target as usize].sched.push(*req);
        }
        if P::ENABLED {
            self.probe.fault_event(
                now,
                FaultEvent::DiskDeath {
                    node,
                    disk,
                    failover: target,
                },
            );
        }
        self.try_start_disk(node, target);
    }

    /// Every `every`-th terminal that is mid-title abandons it and picks
    /// a fresh selection — [`VodSystem::handle_video_finished`] semantics
    /// without a completed title. A piggyback group whose leader abandons
    /// dissolves, and every member re-selects; riding followers are not
    /// `Playing` themselves and are only reached that way.
    fn abandon_burst(&mut self, every: u32) {
        let mut abandoned = 0;
        for t in 0..self.cfg.n_terminals {
            if t % every != 0 {
                continue;
            }
            let mid_title = !matches!(
                self.terminals[t as usize].state(),
                crate::terminal::PlayState::Idle | crate::terminal::PlayState::Finished
            );
            if !mid_title {
                continue;
            }
            abandoned += 1;
            self.handle_video_finished(t);
        }
        if P::ENABLED {
            self.probe
                .fault_event(self.cal.now(), FaultEvent::AbandonBurst { abandoned });
        }
    }

    // ----- measurement ----------------------------------------------------

    fn begin_measure(&mut self) {
        let now = self.cal.now();
        self.measuring = true;
        self.glitches_measured = 0;
        self.glitching_terminals.clear();
        self.blocks_delivered = 0;
        self.io_latency.reset();
        self.deadline_misses = 0;
        self.net.reset_window(now);
        for node in &mut self.nodes {
            node.cpu.reset_window(now);
            node.pool.reset_stats();
            for unit in &mut node.disks {
                unit.disk.reset_window(now);
            }
        }
    }

    fn collect_report(&self, end: SimTime) -> RunReport {
        let mut disk_utils = Vec::new();
        let mut pool = PoolStats::default();
        let mut prefetch = PrefetchStats::default();
        let mut cpu_utils = Vec::new();
        for node in &self.nodes {
            cpu_utils.push(node.cpu.utilization(end));
            let s = node.pool.stats();
            pool.lookups += s.lookups;
            pool.resident_hits += s.resident_hits;
            pool.inflight_hits += s.inflight_hits;
            pool.misses += s.misses;
            pool.shared_references += s.shared_references;
            pool.prefetch_inserts += s.prefetch_inserts;
            pool.prefetch_used += s.prefetch_used;
            pool.prefetch_wasted += s.prefetch_wasted;
            pool.evictions += s.evictions;
            pool.alloc_failures += s.alloc_failures;
            for unit in &node.disks {
                disk_utils.push(unit.disk.utilization(end));
                let p = unit.prefetch.stats();
                prefetch.enqueued += p.enqueued;
                prefetch.deduplicated += p.deduplicated;
                prefetch.issued += p.issued;
                prefetch.completed += p.completed;
                prefetch.aborted += p.aborted;
                prefetch.cancelled += p.cancelled;
            }
        }
        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let maxf = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
        let minf = |v: &[f64]| v.iter().copied().fold(1.0, f64::min);
        RunReport {
            terminals: self.cfg.n_terminals,
            measured: self.cfg.timing.measure,
            glitches: self.glitches_measured,
            glitching_terminals: self.glitching_terminals.len(),
            blocks_delivered: self.blocks_delivered,
            videos_completed: self.terminals.iter().map(|t| t.videos_completed()).sum(),
            avg_disk_utilization: avg(&disk_utils),
            max_disk_utilization: maxf(&disk_utils),
            min_disk_utilization: minf(&disk_utils),
            disk_utilizations: disk_utils,
            avg_cpu_utilization: avg(&cpu_utils),
            max_cpu_utilization: maxf(&cpu_utils),
            min_cpu_utilization: minf(&cpu_utils),
            net_peak_bytes_per_sec: self.net.peak_bytes_per_sec(),
            net_mean_bytes_per_sec: self.net.mean_bytes_per_sec(end),
            pool,
            prefetch,
            events_processed: self.events_processed,
            io_latency_mean_ms: self.io_latency.mean() * 1e3,
            io_latency_p95_ms: self.io_latency.quantile(0.95) * 1e3,
            io_latency_max_ms: self.io_latency.max() * 1e3,
            io_latency_rejected: self.io_latency.rejected(),
            deadline_misses: self.deadline_misses,
            terminals_piggybacked: self
                .piggyback
                .as_ref()
                .map_or(0, |p| p.terminals_piggybacked()),
        }
    }

    // ----- inspection (tests, examples) ------------------------------------

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The generated library.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The storage layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.cal.now()
    }

    /// Access a terminal (tests).
    pub fn terminal(&self, t: u32) -> &Terminal {
        &self.terminals[t as usize]
    }

    /// Total glitches across all terminals since simulation start (not
    /// just the measurement window).
    pub fn glitches_since_start(&self) -> u64 {
        self.terminals.iter().map(|t| t.glitches_total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiffi_simcore::SimDuration;

    #[test]
    fn late_join_boundary_clamps_instead_of_underflowing() {
        // stagger > warmup cannot pass validate(), but the boundary must
        // degrade to a cold snapshot (time zero) rather than underflow —
        // the same graceful degradation stagger == 0 gets.
        let timing = RunTiming {
            stagger: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(4),
            measure: SimDuration::from_secs(1),
        };
        assert_eq!(late_join_open(&timing), SimTime::ZERO);
        let timing = RunTiming {
            stagger: SimDuration::from_secs(5),
            warmup: SimDuration::from_secs(15),
            measure: SimDuration::from_secs(1),
        };
        assert_eq!(
            late_join_open(&timing),
            SimTime::ZERO + SimDuration::from_secs(10)
        );
        let timing = RunTiming {
            stagger: SimDuration::ZERO,
            warmup: SimDuration::from_secs(15),
            measure: SimDuration::from_secs(1),
        };
        assert_eq!(
            late_join_open(&timing),
            SimTime::ZERO + SimDuration::from_secs(15)
        );
    }

    #[test]
    fn kernel_env_values_parse_or_error() {
        use spiffi_simcore::KernelKind;
        assert_eq!(parse_kernel_env(None), Ok(KernelKind::Bucket));
        assert_eq!(parse_kernel_env(Some("")), Ok(KernelKind::Bucket));
        assert_eq!(parse_kernel_env(Some("bucket")), Ok(KernelKind::Bucket));
        assert_eq!(parse_kernel_env(Some("Bucket")), Ok(KernelKind::Bucket));
        assert_eq!(parse_kernel_env(Some("heap")), Ok(KernelKind::Heap));
        assert_eq!(parse_kernel_env(Some("HEAP")), Ok(KernelKind::Heap));
        assert_eq!(parse_kernel_env(Some("hep")), Err("hep".into()));
        assert_eq!(parse_kernel_env(Some("1")), Err("1".into()));
    }

    /// The tentpole contract: serialize → deserialize → fork reproduces
    /// `fork_to` on the in-process snapshot bit-exactly.
    #[test]
    fn snapshot_serialization_round_trips_and_forks_identically() {
        let mut cfg = SystemConfig::small_test();
        cfg.n_terminals = 14;
        cfg.piggyback_delay = Some(SimDuration::from_secs(2));
        let library = std::sync::Arc::new(VodSystem::generate_library(&cfg));
        let mut sys = VodSystem::with_library_marginal(cfg.clone(), library.clone(), 14);
        // An in-progress visual search at the boundary exercises the
        // search-state and SearchStep-event codecs.
        sys.schedule_visual_search(
            SimTime::ZERO + SimDuration::from_secs(6),
            3,
            VisualSearch {
                show: SimDuration::from_secs(1),
                skip: SimDuration::from_secs(4),
                forward: true,
            },
            SimDuration::from_secs(8),
        );
        sys.replay_to_snapshot();

        let body = sys.snap_export();
        let back = VodSystem::snap_import(cfg, library, &body).expect("snapshot import");
        assert_eq!(back.snap_export(), body, "re-export not byte-identical");

        let r_memory = sys.fork_to(20).run();
        let r_wire = back.fork_to(20).run();
        assert_eq!(r_memory, r_wire, "forked runs diverged after round-trip");
        assert!(r_memory.blocks_delivered > 0, "degenerate run");
    }

    /// Records every fault callback so tests can assert what fired when.
    #[derive(Clone, Default)]
    struct FaultLog {
        events: Vec<(SimTime, FaultEvent)>,
    }

    impl Probe for FaultLog {
        fn fault_event(&mut self, now: SimTime, ev: FaultEvent) {
            self.events.push((now, ev));
        }
    }

    fn faulted_config() -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.n_terminals = 12;
        cfg.scenario = Some(crate::scenario::Scenario {
            faults: vec![
                crate::scenario::FaultSpec::DiskDeath {
                    node: 0,
                    disk: 0,
                    at: SimDuration::from_secs(20),
                },
                crate::scenario::FaultSpec::DiskDegrade {
                    node: 1,
                    disk: 1,
                    at: SimDuration::from_secs(25),
                    dur: SimDuration::from_secs(10),
                    factor_pct: 200,
                },
                crate::scenario::FaultSpec::AbandonBurst {
                    at: SimDuration::from_secs(30),
                    every: 3,
                },
            ],
            mix: Some(crate::scenario::BitrateMix {
                every: 4,
                bit_rate_bps: 8_000_000,
            }),
        });
        cfg
    }

    #[test]
    fn fault_scenario_perturbs_the_run_and_stays_deterministic() {
        let cfg = faulted_config();
        let (faulted, log) = VodSystem::with_probe(
            cfg.clone(),
            VodSystem::generate_library(&cfg),
            FaultLog::default(),
        )
        .run_traced();
        let again = VodSystem::new(cfg.clone()).run();
        assert_eq!(faulted, again, "faulted runs must reproduce bit-exactly");

        let mut clean_cfg = cfg.clone();
        clean_cfg.scenario = None;
        let clean = VodSystem::new(clean_cfg).run();
        assert_ne!(faulted, clean, "faults had no observable effect");

        // Death@20, degrade-set@25, abandon@30, degrade-restore@35 —
        // firing order follows simulation time, not declaration order.
        let kinds: Vec<&'static str> = log.events.iter().map(|(_, e)| e.label()).collect();
        assert_eq!(
            kinds,
            [
                "disk_death",
                "disk_degraded",
                "abandon_burst",
                "disk_degraded"
            ]
        );
        assert!(log.events.windows(2).all(|w| w[0].0 <= w[1].0));
        match log.events[0].1 {
            FaultEvent::DiskDeath {
                node,
                disk,
                failover,
            } => {
                assert_eq!((node, disk), (0, 0));
                assert_eq!(failover, 1, "failover must pick the living sibling");
            }
            other => panic!("expected disk death, got {other:?}"),
        }
        match log.events[2].1 {
            FaultEvent::AbandonBurst { abandoned } => {
                assert!(abandoned > 0, "no terminal was mid-title at the burst")
            }
            other => panic!("expected abandon burst, got {other:?}"),
        }
    }

    #[test]
    fn faulted_snapshot_round_trips_and_forks_identically() {
        // Fault times sit past the warm-snapshot instant (warmup −
        // stagger = 10 s), so pending FaultFire events must survive the
        // wire round-trip for the forks to agree.
        let cfg = faulted_config();
        let library = std::sync::Arc::new(VodSystem::generate_library(&cfg));
        let mut sys = VodSystem::with_library_marginal(cfg.clone(), library.clone(), 12);
        sys.replay_to_snapshot();
        assert_eq!(sys.faults_fired(), 0, "faults fired before snapshot");

        let body = sys.snap_export();
        let back = VodSystem::snap_import(cfg, library, &body).expect("snapshot import");
        assert_eq!(back.snap_export(), body, "re-export not byte-identical");

        let r_memory = sys.fork_to(12).run();
        let r_wire = back.fork_to(12).run();
        assert_eq!(r_memory, r_wire, "faulted forks diverged after round-trip");
        assert!(r_memory.blocks_delivered > 0, "degenerate run");
    }

    #[test]
    fn dead_disk_serves_no_io_and_its_streams_survive() {
        let cfg = faulted_config();
        let (report, probe) = VodSystem::with_probe(
            cfg.clone(),
            VodSystem::generate_library(&cfg),
            DiskIoLog::default(),
        )
        .run_traced();
        assert!(report.blocks_delivered > 0, "degenerate run");
        let death = SimTime::ZERO + SimDuration::from_secs(20);
        assert!(
            probe
                .starts
                .iter()
                .all(|&(t, node, disk)| { (node, disk) != (0, 0) || t < death }),
            "dead disk started a transfer after its death"
        );
        // The survivor on the node carried load after the death.
        assert!(
            probe
                .starts
                .iter()
                .any(|&(t, node, disk)| (node, disk) == (0, 1) && t > death),
            "failover sibling never served after the death"
        );
    }

    /// Records disk transfer starts as `(time, node, disk)`.
    #[derive(Clone, Default)]
    struct DiskIoLog {
        starts: Vec<(SimTime, u32, u32)>,
    }

    impl Probe for DiskIoLog {
        fn disk_io_start(&mut self, now: SimTime, ev: DiskIoStart) {
            self.starts.push((now, ev.node, ev.disk));
        }
    }
}

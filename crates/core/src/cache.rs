//! Seed-keyed caching of generated video libraries.
//!
//! Library generation draws an exponential frame-size sample per frame of
//! every title and dominates the cost of building a [`VodSystem`]. The
//! library depends only on a handful of configuration fields — the seed,
//! the title count, the per-title stream parameters, and whether §8.1
//! search versions are stored — so every experiment grid that varies
//! schedulers, memory sizes, stripe sizes or terminal counts regenerates
//! the *same* libraries at every grid point. A [`LibraryCache`] shared
//! across a sweep generates each distinct library once and hands out
//! cheap [`Arc`] clones.
//!
//! The cache is `Sync`: the parallel experiment engine's workers
//! ([`Engine`](crate::Engine)) share one cache and may race to generate
//! the same key. That race is benign — generation is deterministic, so
//! both racers produce identical libraries and whichever insertion loses
//! simply drops its copy.
//!
//! [`ProbeCache`] applies the same idea one level up: a capacity search
//! probes the same `(terminal count, replication)` pairs over and over —
//! the bracket confirmation re-probes a count the bisection later visits,
//! `hi == lo` brackets probe one count twice, and repeated searches over
//! one configuration repeat everything — so every *clean* per-replication
//! probe outcome is cached under `(config fingerprint, count, replication)`
//! and replayed instead of re-simulated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spiffi_mpeg::Library;

use crate::config::SystemConfig;
use crate::system::VodSystem;

/// The configuration fields [`VodSystem::generate_library`] actually reads,
/// collapsed into a hashable identity. Two configurations with equal keys
/// generate byte-identical libraries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LibraryKey {
    seed: u64,
    n_videos: usize,
    bit_rate_bps: u64,
    fps: u32,
    duration_ns: u64,
    search_speedup: Option<u32>,
    /// Bitrate-heterogeneity from a fault scenario, as `(every, bps)`:
    /// every k-th title is regenerated at an alternate bitrate, so two
    /// configurations differing only in mix must not share a library.
    mix: Option<(u32, u64)>,
}

impl LibraryKey {
    /// The library identity of `cfg`.
    pub fn of(cfg: &SystemConfig) -> Self {
        LibraryKey {
            seed: cfg.seed,
            n_videos: cfg.n_videos,
            bit_rate_bps: cfg.video.bit_rate_bps,
            fps: cfg.video.fps,
            duration_ns: cfg.video.duration.0,
            search_speedup: cfg.search_speedup,
            mix: cfg
                .scenario
                .as_ref()
                .and_then(|s| s.mix)
                .map(|m| (m.every, m.bit_rate_bps)),
        }
    }
}

/// A thread-safe, seed-keyed cache of generated libraries.
#[derive(Debug, Default)]
pub struct LibraryCache {
    map: Mutex<HashMap<LibraryKey, Arc<Library>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LibraryCache {
    /// An empty cache.
    pub fn new() -> Self {
        LibraryCache::default()
    }

    /// The library for `cfg`, generated on first request and shared
    /// afterwards.
    pub fn get(&self, cfg: &SystemConfig) -> Arc<Library> {
        let key = LibraryKey::of(cfg);
        if let Some(lib) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(lib);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Generate outside the lock: other keys stay serviceable while this
        // one is built, at the cost of a benign duplicate-generation race.
        let lib = Arc::new(VodSystem::generate_library(cfg));
        Arc::clone(self.map.lock().unwrap().entry(key).or_insert(lib))
    }

    /// Distinct libraries currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to generate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The deterministic standalone outcome of one replication of a capacity
/// probe: what [`VodSystem::run_glitch_probe`] reports when the run
/// completes *cleanly* — to its own first measured glitch, or to the end
/// of the measurement window — without being truncated by a sibling's
/// cancel flag or a search abort. Truncated outcomes are wall-clock
/// artifacts and must never enter the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Glitches measured before the run stopped (0 = glitch-free window).
    pub glitches: u64,
    /// Simulation events the replication processed before stopping.
    pub events: u64,
}

/// Cache key: `(config fingerprint, terminal count, replication index)`.
type ProbeKey = (Arc<str>, u32, u32);

/// A search-wide, thread-safe cache of per-replication probe outcomes,
/// keyed by `(config fingerprint, terminal count, replication index)`.
///
/// The engine consults it before simulating any `(count, replication)`
/// pair and inserts every clean outcome, so no pair is ever simulated
/// twice for one configuration — within a search, across the bracket /
/// bisection phases, and across repeated searches (e.g. the outer
/// [`capacity_with_confidence`](crate::capacity_with_confidence) loop run
/// twice, or a warm re-measurement in a bench harness). Like
/// [`LibraryCache`], concurrent duplicate insertion is a benign race:
/// clean outcomes are deterministic, so racers insert equal values.
#[derive(Debug, Default)]
pub struct ProbeCache {
    map: Mutex<HashMap<ProbeKey, ProbeOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProbeCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProbeCache::default()
    }

    /// The probe identity of `cfg`: every configuration field *except*
    /// `n_terminals` (which each probe overrides with its candidate
    /// count), rendered through `Debug` into one interned string.
    ///
    /// Rust's `Debug` for floats prints the shortest round-trip
    /// representation, so two configurations with equal fingerprints are
    /// bit-identical as probe inputs — equal fingerprints really do imply
    /// equal outcomes, with no hand-maintained field list to fall out of
    /// sync when `SystemConfig` grows a field.
    pub fn fingerprint(cfg: &SystemConfig) -> Arc<str> {
        let mut c = cfg.clone();
        c.n_terminals = 0;
        Arc::from(format!("{c:?}"))
    }

    /// [`ProbeCache::fingerprint`] for marginal-timing probes: the base
    /// terminal count is part of a probe's identity under
    /// [`VodSystem::with_library_marginal`] semantics (it decides which
    /// terminals join late), so it is prefixed onto the fingerprint.
    /// Marginal outcomes therefore never mix with standard-timing outcomes
    /// for the same configuration, even before the warm-up transform is
    /// taken into account.
    pub fn fingerprint_with_base(cfg: &SystemConfig, base: u32) -> Arc<str> {
        let mut c = cfg.clone();
        c.n_terminals = 0;
        Arc::from(format!("base={base}|{c:?}"))
    }

    /// The cached outcome for replication `r` of a probe at `n` terminals,
    /// if a clean run has been recorded.
    pub fn get(&self, fp: &Arc<str>, n: u32, r: u32) -> Option<ProbeOutcome> {
        let got = self
            .map
            .lock()
            .unwrap()
            .get(&(Arc::clone(fp), n, r))
            .copied();
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Record the clean outcome for replication `r` at `n` terminals.
    pub fn insert(&self, fp: &Arc<str>, n: u32, r: u32, out: ProbeOutcome) {
        self.map.lock().unwrap().insert((Arc::clone(fp), n, r), out);
    }

    /// Distinct `(fingerprint, count, replication)` outcomes cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Cache key: `(marginal fingerprint, base terminal count, replication)`.
type SnapshotKey = (Arc<str>, u32, u32);

/// A search-wide, thread-safe cache of warm simulation snapshots: one
/// [`VodSystem`] per `(marginal fingerprint, base count, replication)`,
/// captured at the snapshot boundary by replaying the shared base warm-up
/// once. Probing `n > base` terminals then costs one
/// [`VodSystem::fork_to`] (a deep clone plus Δterminals join events) and
/// the measurement window — O(Δterminals) instead of re-simulating the
/// whole warm-up.
///
/// Unlike [`ProbeCache`], duplicate capture is *not* a benign race worth
/// tolerating: a capture replays a full warm-up, so each key holds a
/// `OnceLock` and concurrent requesters block on the single capturing
/// thread instead of burning a core each on identical replays.
#[derive(Default)]
pub struct SnapshotCache {
    #[allow(clippy::type_complexity)]
    map: Mutex<HashMap<SnapshotKey, Arc<std::sync::OnceLock<Arc<VodSystem>>>>>,
    captures: AtomicU64,
    hits: AtomicU64,
}

impl std::fmt::Debug for SnapshotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCache")
            .field("snapshots", &self.len())
            .field("captures", &self.captures())
            .field("hits", &self.hits())
            .finish()
    }
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> Self {
        SnapshotCache::default()
    }

    /// The snapshot for replication `r` of the `base`-terminal warm-up,
    /// capturing it via `build` on first request. Returns the shared
    /// snapshot and whether it was served warm (`true` = no replay ran on
    /// this call's behalf).
    pub fn get_or_capture(
        &self,
        fp: &Arc<str>,
        base: u32,
        r: u32,
        build: impl FnOnce() -> VodSystem,
    ) -> (Arc<VodSystem>, bool) {
        let cell = {
            let mut map = self.map.lock().unwrap();
            Arc::clone(map.entry((Arc::clone(fp), base, r)).or_default())
        };
        let mut warm = true;
        let snap = Arc::clone(cell.get_or_init(|| {
            warm = false;
            self.captures.fetch_add(1, Ordering::Relaxed);
            Arc::new(build())
        }));
        if warm {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (snap, warm)
    }

    /// Distinct snapshots captured and held.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from an already-captured snapshot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Warm-up replays actually performed.
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_identity_hits_different_seed_misses() {
        let cache = LibraryCache::new();
        let cfg = SystemConfig::small_test();
        let a = cache.get(&cfg);
        let b = cache.get(&cfg);
        assert!(Arc::ptr_eq(&a, &b), "second request must share");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        let mut other = cfg.clone();
        other.seed = cfg.seed + 1;
        let c = cache.get(&other);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different library");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn key_ignores_non_library_fields() {
        let cfg = SystemConfig::small_test();
        let mut variant = cfg.clone();
        variant.n_terminals += 100;
        variant.stripe_bytes *= 2;
        variant.server_memory_bytes *= 2;
        assert_eq!(LibraryKey::of(&cfg), LibraryKey::of(&variant));

        let mut longer = cfg.clone();
        longer.video.duration = longer.video.duration + longer.video.duration;
        assert_ne!(LibraryKey::of(&cfg), LibraryKey::of(&longer));

        // A bitrate mix regenerates titles, so it must change the key —
        // but a scenario carrying only faults must not.
        let mut mixed = cfg.clone();
        mixed.scenario = Some(crate::scenario::Scenario {
            mix: Some(crate::scenario::BitrateMix {
                every: 4,
                bit_rate_bps: 15_000_000,
            }),
            ..Default::default()
        });
        assert_ne!(LibraryKey::of(&cfg), LibraryKey::of(&mixed));
        let mut faulted = cfg.clone();
        faulted.scenario = Some(crate::scenario::Scenario::default());
        assert_eq!(LibraryKey::of(&cfg), LibraryKey::of(&faulted));
    }

    #[test]
    fn probe_cache_roundtrip_and_counters() {
        let cache = ProbeCache::new();
        let fp = ProbeCache::fingerprint(&SystemConfig::small_test());
        assert!(cache.is_empty());
        assert_eq!(cache.get(&fp, 10, 0), None);
        let out = ProbeOutcome {
            glitches: 3,
            events: 12345,
        };
        cache.insert(&fp, 10, 0, out);
        assert_eq!(cache.get(&fp, 10, 0), Some(out));
        // Count and replication are both part of the key.
        assert_eq!(cache.get(&fp, 10, 1), None);
        assert_eq!(cache.get(&fp, 15, 0), None);
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
    }

    #[test]
    fn probe_fingerprint_ignores_terminal_count_only() {
        let cfg = SystemConfig::small_test();
        let mut more_terms = cfg.clone();
        more_terms.n_terminals += 100;
        assert_eq!(
            ProbeCache::fingerprint(&cfg),
            ProbeCache::fingerprint(&more_terms),
            "probes override n_terminals, so it must not split the cache"
        );
        let mut other_seed = cfg.clone();
        other_seed.seed ^= 1;
        assert_ne!(
            ProbeCache::fingerprint(&cfg),
            ProbeCache::fingerprint(&other_seed),
            "replication seeds derive from the base seed"
        );
        let mut other_mem = cfg.clone();
        other_mem.server_memory_bytes *= 2;
        assert_ne!(
            ProbeCache::fingerprint(&cfg),
            ProbeCache::fingerprint(&other_mem)
        );
    }

    #[test]
    fn snapshot_cache_captures_once_then_serves_warm() {
        let cache = SnapshotCache::new();
        let mut cfg = SystemConfig::small_test();
        cfg.n_terminals = 2;
        let fp = ProbeCache::fingerprint_with_base(&cfg, 2);
        let lib = Arc::new(VodSystem::generate_library(&cfg));
        let capture = |cfg: &SystemConfig| {
            let mut sys = VodSystem::with_library_marginal(cfg.clone(), Arc::clone(&lib), 2);
            sys.replay_to_snapshot();
            sys
        };
        let (a, warm_a) = cache.get_or_capture(&fp, 2, 0, || capture(&cfg));
        assert!(!warm_a, "first request must capture");
        let (b, warm_b) = cache.get_or_capture(&fp, 2, 0, || capture(&cfg));
        assert!(warm_b, "second request must be served warm");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.captures(), cache.hits(), cache.len()), (1, 1, 1));
        // A different replication captures separately.
        let (_, warm_c) = cache.get_or_capture(&fp, 2, 1, || capture(&cfg));
        assert!(!warm_c);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn marginal_fingerprint_is_disjoint_from_standard() {
        let cfg = SystemConfig::small_test();
        assert_ne!(
            ProbeCache::fingerprint(&cfg),
            ProbeCache::fingerprint_with_base(&cfg, 10)
        );
        assert_ne!(
            ProbeCache::fingerprint_with_base(&cfg, 10),
            ProbeCache::fingerprint_with_base(&cfg, 20),
            "the base count is part of a marginal probe's identity"
        );
    }

    #[test]
    fn cached_library_matches_direct_generation() {
        let cache = LibraryCache::new();
        let cfg = SystemConfig::small_test();
        let cached = cache.get(&cfg);
        let direct = VodSystem::generate_library(&cfg);
        assert_eq!(cached.len(), direct.len());
        for i in 0..direct.len() {
            let id = spiffi_mpeg::VideoId(i as u32);
            assert_eq!(
                cached.get(id).total_bytes(),
                direct.get(id).total_bytes(),
                "title {i} differs"
            );
        }
    }
}

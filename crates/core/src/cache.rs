//! Seed-keyed caching of generated video libraries.
//!
//! Library generation draws an exponential frame-size sample per frame of
//! every title and dominates the cost of building a [`VodSystem`]. The
//! library depends only on a handful of configuration fields — the seed,
//! the title count, the per-title stream parameters, and whether §8.1
//! search versions are stored — so every experiment grid that varies
//! schedulers, memory sizes, stripe sizes or terminal counts regenerates
//! the *same* libraries at every grid point. A [`LibraryCache`] shared
//! across a sweep generates each distinct library once and hands out
//! cheap [`Arc`] clones.
//!
//! The cache is `Sync`: the parallel experiment engine's workers
//! ([`Engine`](crate::Engine)) share one cache and may race to generate
//! the same key. That race is benign — generation is deterministic, so
//! both racers produce identical libraries and whichever insertion loses
//! simply drops its copy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spiffi_mpeg::Library;

use crate::config::SystemConfig;
use crate::system::VodSystem;

/// The configuration fields [`VodSystem::generate_library`] actually reads,
/// collapsed into a hashable identity. Two configurations with equal keys
/// generate byte-identical libraries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LibraryKey {
    seed: u64,
    n_videos: usize,
    bit_rate_bps: u64,
    fps: u32,
    duration_ns: u64,
    search_speedup: Option<u32>,
}

impl LibraryKey {
    /// The library identity of `cfg`.
    pub fn of(cfg: &SystemConfig) -> Self {
        LibraryKey {
            seed: cfg.seed,
            n_videos: cfg.n_videos,
            bit_rate_bps: cfg.video.bit_rate_bps,
            fps: cfg.video.fps,
            duration_ns: cfg.video.duration.0,
            search_speedup: cfg.search_speedup,
        }
    }
}

/// A thread-safe, seed-keyed cache of generated libraries.
#[derive(Debug, Default)]
pub struct LibraryCache {
    map: Mutex<HashMap<LibraryKey, Arc<Library>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LibraryCache {
    /// An empty cache.
    pub fn new() -> Self {
        LibraryCache::default()
    }

    /// The library for `cfg`, generated on first request and shared
    /// afterwards.
    pub fn get(&self, cfg: &SystemConfig) -> Arc<Library> {
        let key = LibraryKey::of(cfg);
        if let Some(lib) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(lib);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Generate outside the lock: other keys stay serviceable while this
        // one is built, at the cost of a benign duplicate-generation race.
        let lib = Arc::new(VodSystem::generate_library(cfg));
        Arc::clone(self.map.lock().unwrap().entry(key).or_insert(lib))
    }

    /// Distinct libraries currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to generate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_identity_hits_different_seed_misses() {
        let cache = LibraryCache::new();
        let cfg = SystemConfig::small_test();
        let a = cache.get(&cfg);
        let b = cache.get(&cfg);
        assert!(Arc::ptr_eq(&a, &b), "second request must share");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        let mut other = cfg.clone();
        other.seed = cfg.seed + 1;
        let c = cache.get(&other);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different library");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn key_ignores_non_library_fields() {
        let cfg = SystemConfig::small_test();
        let mut variant = cfg.clone();
        variant.n_terminals += 100;
        variant.stripe_bytes *= 2;
        variant.server_memory_bytes *= 2;
        assert_eq!(LibraryKey::of(&cfg), LibraryKey::of(&variant));

        let mut longer = cfg.clone();
        longer.video.duration = longer.video.duration + longer.video.duration;
        assert_ne!(LibraryKey::of(&cfg), LibraryKey::of(&longer));
    }

    #[test]
    fn cached_library_matches_direct_generation() {
        let cache = LibraryCache::new();
        let cfg = SystemConfig::small_test();
        let cached = cache.get(&cfg);
        let direct = VodSystem::generate_library(&cfg);
        assert_eq!(cached.len(), direct.len());
        for i in 0..direct.len() {
            let id = spiffi_mpeg::VideoId(i as u32);
            assert_eq!(
                cached.get(id).total_bytes(),
                direct.get(id).total_bytes(),
                "title {i} differs"
            );
        }
    }
}

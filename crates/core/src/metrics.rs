//! Run-level measurement report.

use spiffi_bufferpool::PoolStats;
use spiffi_prefetch::PrefetchStats;
use spiffi_simcore::SimDuration;

/// Everything measured over one run's measurement window — the quantities
/// behind every figure of §7: glitch counts (Figures 9–13, 15, 19, Table
/// 2), disk utilization (Figure 14), CPU utilization (Figure 17), network
/// bandwidth (Figure 18), and buffer-pool sharing (Figure 16).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Terminals in the closed population.
    pub terminals: u32,
    /// Length of the measurement window.
    pub measured: SimDuration,
    /// Glitches during the window (the capacity criterion: zero = the
    /// configuration supports this many terminals).
    pub glitches: u64,
    /// Distinct terminals that glitched during the window.
    pub glitching_terminals: u32,
    /// Stripe-block replies delivered during the window.
    pub blocks_delivered: u64,
    /// Titles completed (across the whole run).
    pub videos_completed: u64,
    /// Mean disk utilization over all disks.
    pub avg_disk_utilization: f64,
    /// Utilization of the busiest disk.
    pub max_disk_utilization: f64,
    /// Utilization of the idlest disk.
    pub min_disk_utilization: f64,
    /// Per-disk utilizations in global disk order.
    pub disk_utilizations: Vec<f64>,
    /// Mean CPU utilization over all nodes.
    pub avg_cpu_utilization: f64,
    /// Utilization of the busiest CPU.
    pub max_cpu_utilization: f64,
    /// Utilization of the idlest CPU.
    pub min_cpu_utilization: f64,
    /// Peak aggregate network bandwidth, bytes/second (Figure 18).
    pub net_peak_bytes_per_sec: f64,
    /// Mean aggregate network bandwidth, bytes/second.
    pub net_mean_bytes_per_sec: f64,
    /// Aggregated buffer-pool statistics across nodes.
    pub pool: PoolStats,
    /// Aggregated prefetcher statistics across disks.
    pub prefetch: PrefetchStats,
    /// Events processed over the whole run (throughput reporting).
    pub events_processed: u64,
    /// Mean demand (non-prefetch) disk I/O latency — scheduler queueing
    /// plus service — in milliseconds.
    pub io_latency_mean_ms: f64,
    /// 95th-percentile demand I/O latency, milliseconds.
    pub io_latency_p95_ms: f64,
    /// Worst demand I/O latency observed, milliseconds.
    pub io_latency_max_ms: f64,
    /// Non-finite latency observations the histogram rejected. Always zero
    /// in a healthy run; non-zero flags a timing bug upstream.
    pub io_latency_rejected: u64,
    /// Demand I/Os that completed after an *achievable* deadline (one
    /// later than their issue instant). Misses do not necessarily glitch —
    /// the terminal's buffer may still hold data — but predict glitches
    /// under further load.
    pub deadline_misses: u64,
    /// Terminals piggybacked onto another stream (§8.2), if enabled.
    pub terminals_piggybacked: u64,
}

impl RunReport {
    /// True when no terminal glitched during the measurement window.
    pub fn glitch_free(&self) -> bool {
        self.glitches == 0
    }

    /// Delivered video payload rate, bytes/second, over the window.
    pub fn delivery_bytes_per_sec(&self, block_bytes: u64) -> f64 {
        if self.measured == SimDuration::ZERO {
            return 0.0;
        }
        self.blocks_delivered as f64 * block_bytes as f64 / self.measured.as_secs_f64()
    }

    /// One-line summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "terminals={} glitches={} ({} terms) disk={:.1}% cpu={:.1}% \
             net_peak={:.1} MB/s pool_hit={:.1}% shared={:.1}% \
             deadline_misses={} io_lat={:.1}/{:.1}/{:.1} ms",
            self.terminals,
            self.glitches,
            self.glitching_terminals,
            self.avg_disk_utilization * 100.0,
            self.avg_cpu_utilization * 100.0,
            self.net_peak_bytes_per_sec / 1e6,
            self.pool.hit_rate() * 100.0,
            self.pool.shared_reference_rate() * 100.0,
            self.deadline_misses,
            self.io_latency_mean_ms,
            self.io_latency_p95_ms,
            self.io_latency_max_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            terminals: 100,
            measured: SimDuration::from_secs(600),
            glitches: 0,
            glitching_terminals: 0,
            blocks_delivered: 60_000,
            videos_completed: 5,
            avg_disk_utilization: 0.9,
            max_disk_utilization: 0.95,
            min_disk_utilization: 0.85,
            disk_utilizations: vec![0.85, 0.95],
            avg_cpu_utilization: 0.2,
            max_cpu_utilization: 0.25,
            min_cpu_utilization: 0.15,
            net_peak_bytes_per_sec: 55e6,
            net_mean_bytes_per_sec: 50e6,
            pool: PoolStats::default(),
            prefetch: PrefetchStats::default(),
            events_processed: 1_000_000,
            io_latency_mean_ms: 40.0,
            io_latency_p95_ms: 120.0,
            io_latency_max_ms: 300.0,
            io_latency_rejected: 0,
            deadline_misses: 0,
            terminals_piggybacked: 0,
        }
    }

    #[test]
    fn glitch_free_criterion() {
        let mut r = report();
        assert!(r.glitch_free());
        r.glitches = 1;
        assert!(!r.glitch_free());
    }

    #[test]
    fn delivery_rate() {
        let r = report();
        // 60 000 × 512 KB over 600 s = 52.4 MB/s.
        let rate = r.delivery_bytes_per_sec(512 * 1024);
        assert!((rate - 52.4e6).abs() < 0.2e6, "rate {rate}");
        let mut zero = report();
        zero.measured = SimDuration::ZERO;
        assert_eq!(zero.delivery_bytes_per_sec(512 * 1024), 0.0);
    }

    #[test]
    fn summary_is_informative() {
        let s = report().summary();
        assert!(s.contains("terminals=100"));
        assert!(s.contains("glitches=0"));
        assert!(s.contains("deadline_misses=0"));
        assert!(s.contains("io_lat=40.0/120.0/300.0 ms"));
    }
}

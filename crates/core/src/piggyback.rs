//! Piggybacking terminals (§8.2 of the SPIFFI paper).
//!
//! "There is no reason why the video server could not recognize popular
//! movies and intentionally delay the first subscriber (e.g., by playing a
//! few commercials) while it waits for additional subscribers to request
//! the same movie. In this way, a group of terminals could be 'piggybacked'
//! and serviced as though they were one terminal."
//!
//! The manager batches start requests per title within a configurable
//! delay window. When a batch fires, its first member becomes the group
//! *leader* — the only terminal that actually transfers data — and the
//! rest become *followers* who watch the leader's stream (a network-level
//! multicast). Followers therefore place no additional load on the server.

use std::collections::HashMap;

use spiffi_mpeg::VideoId;
use spiffi_simcore::{SimDuration, SimTime};

/// Outcome of routing a start request through the manager.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StartDecision {
    /// A new batch was opened for this title; the system must schedule a
    /// batch-fire event at the returned instant.
    OpenedBatch {
        /// When the batch fires.
        fire_at: SimTime,
    },
    /// The terminal joined an existing batch and waits for it to fire.
    JoinedBatch,
    /// The request was dropped: the terminal is already a member of the
    /// open batch for this title, or is currently following another
    /// terminal's stream and so cannot start one of its own.
    Ignored,
}

/// The piggyback batch manager.
#[derive(Clone, Debug, Default)]
pub struct Piggyback {
    delay: SimDuration,
    open: HashMap<VideoId, Vec<u32>>,
    /// leader → followers, for groups currently streaming.
    groups: HashMap<u32, Vec<u32>>,
    /// follower → leader.
    leader_of: HashMap<u32, u32>,
    batches_fired: u64,
    terminals_piggybacked: u64,
}

impl Piggyback {
    /// A manager batching starts within `delay`.
    pub fn new(delay: SimDuration) -> Self {
        Piggyback {
            delay,
            ..Default::default()
        }
    }

    /// The batching delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Terminal `term` wants to start `video` at `now`.
    ///
    /// A terminal currently following another terminal's stream has no
    /// stream of its own to start — its request is [`StartDecision::Ignored`]
    /// (it will pick a fresh title when its group dissolves). Likewise a
    /// terminal already waiting in the open batch for this title is not
    /// added a second time: duplicates would inflate
    /// [`Piggyback::terminals_piggybacked`], hand [`Piggyback::fire`] a
    /// follower list with repeats, and let a terminal overwrite its own
    /// `leader_of` entry.
    pub fn request_start(&mut self, term: u32, video: VideoId, now: SimTime) -> StartDecision {
        if self.leader_of.contains_key(&term) {
            return StartDecision::Ignored;
        }
        match self.open.get_mut(&video) {
            Some(members) => {
                if members.contains(&term) {
                    StartDecision::Ignored
                } else {
                    members.push(term);
                    StartDecision::JoinedBatch
                }
            }
            None => {
                self.open.insert(video, vec![term]);
                StartDecision::OpenedBatch {
                    fire_at: now + self.delay,
                }
            }
        }
    }

    /// Fire the batch for `video`: returns `(leader, followers)`.
    ///
    /// # Panics
    /// If no batch is open for the title.
    pub fn fire(&mut self, video: VideoId) -> (u32, Vec<u32>) {
        let members = self
            .open
            .remove(&video)
            .expect("fired a batch that is not open");
        let leader = members[0];
        let followers = members[1..].to_vec();
        for &f in &followers {
            self.leader_of.insert(f, leader);
        }
        self.terminals_piggybacked += followers.len() as u64;
        self.batches_fired += 1;
        self.groups.insert(leader, followers.clone());
        (leader, followers)
    }

    /// The leader's title finished: dissolve its group and return every
    /// member (leader first) so each can select a new title.
    pub fn dissolve(&mut self, leader: u32) -> Vec<u32> {
        let followers = self.groups.remove(&leader).unwrap_or_default();
        let mut all = Vec::with_capacity(followers.len() + 1);
        all.push(leader);
        for f in followers {
            self.leader_of.remove(&f);
            all.push(f);
        }
        all
    }

    /// True if `term` is currently following another terminal's stream.
    pub fn is_follower(&self, term: u32) -> bool {
        self.leader_of.contains_key(&term)
    }

    /// Number of streams saved so far (followers across all fired batches).
    pub fn terminals_piggybacked(&self) -> u64 {
        self.terminals_piggybacked
    }

    /// Batches fired so far.
    pub fn batches_fired(&self) -> u64 {
        self.batches_fired
    }

    /// Serialize the manager's state. Maps are exported in sorted key
    /// order (the canonical form); member vectors ride verbatim because
    /// their order is semantic — `fire` crowns `members[0]` leader. The
    /// `leader_of` index is derivable from `groups` and rebuilt on import.
    pub fn snap_export(&self, w: &mut spiffi_simcore::SnapWriter) {
        let mut open: Vec<(&VideoId, &Vec<u32>)> = self.open.iter().collect();
        open.sort_by_key(|(v, _)| v.0);
        w.usize("yo", open.len());
        for (video, members) in open {
            w.u32("yv", video.0);
            w.usize("ym", members.len());
            for &m in members {
                w.u32("yt", m);
            }
        }
        let mut groups: Vec<(&u32, &Vec<u32>)> = self.groups.iter().collect();
        groups.sort_by_key(|(l, _)| **l);
        w.usize("yg", groups.len());
        for (leader, followers) in groups {
            w.u32("yl", *leader);
            w.usize("yf", followers.len());
            for &f in followers {
                w.u32("yt", f);
            }
        }
        w.u64("yb", self.batches_fired);
        w.u64("yp", self.terminals_piggybacked);
    }

    /// Rebuild state exported by [`Piggyback::snap_export`] into this
    /// freshly constructed manager (the delay comes from configuration,
    /// not the snapshot).
    pub fn snap_import(
        &mut self,
        r: &mut spiffi_simcore::SnapReader<'_>,
    ) -> Result<(), spiffi_simcore::SnapError> {
        debug_assert!(
            self.open.is_empty() && self.groups.is_empty(),
            "import onto a used piggyback manager"
        );
        let n_open = r.usize("yo")?;
        for _ in 0..n_open {
            let video = VideoId(r.u32("yv")?);
            let n = r.usize("ym")?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(r.u32("yt")?);
            }
            self.open.insert(video, members);
        }
        let n_groups = r.usize("yg")?;
        for _ in 0..n_groups {
            let leader = r.u32("yl")?;
            let n = r.usize("yf")?;
            let mut followers = Vec::with_capacity(n);
            for _ in 0..n {
                let f = r.u32("yt")?;
                self.leader_of.insert(f, leader);
                followers.push(f);
            }
            self.groups.insert(leader, followers);
        }
        self.batches_fired = r.u64("yb")?;
        self.terminals_piggybacked = r.u64("yp")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn first_requester_opens_batch() {
        let mut pb = Piggyback::new(SimDuration::from_secs(300));
        let d = pb.request_start(1, VideoId(0), t(10.0));
        assert_eq!(d, StartDecision::OpenedBatch { fire_at: t(310.0) });
    }

    #[test]
    fn subsequent_requesters_join() {
        let mut pb = Piggyback::new(SimDuration::from_secs(300));
        pb.request_start(1, VideoId(0), t(0.0));
        assert_eq!(
            pb.request_start(2, VideoId(0), t(50.0)),
            StartDecision::JoinedBatch
        );
        assert_eq!(
            pb.request_start(3, VideoId(0), t(100.0)),
            StartDecision::JoinedBatch
        );
        let (leader, followers) = pb.fire(VideoId(0));
        assert_eq!(leader, 1);
        assert_eq!(followers, vec![2, 3]);
        assert!(pb.is_follower(2));
        assert!(pb.is_follower(3));
        assert!(!pb.is_follower(1));
        assert_eq!(pb.terminals_piggybacked(), 2);
        assert_eq!(pb.batches_fired(), 1);
    }

    #[test]
    fn different_titles_batch_separately() {
        let mut pb = Piggyback::new(SimDuration::from_secs(300));
        pb.request_start(1, VideoId(0), t(0.0));
        let d = pb.request_start(2, VideoId(1), t(0.0));
        assert!(matches!(d, StartDecision::OpenedBatch { .. }));
    }

    #[test]
    fn batch_reopens_after_fire() {
        let mut pb = Piggyback::new(SimDuration::from_secs(300));
        pb.request_start(1, VideoId(0), t(0.0));
        pb.fire(VideoId(0));
        // A new request after firing opens a fresh batch.
        let d = pb.request_start(9, VideoId(0), t(400.0));
        assert_eq!(d, StartDecision::OpenedBatch { fire_at: t(700.0) });
    }

    #[test]
    fn duplicate_join_is_ignored() {
        // Regression: the same terminal could join an open batch twice,
        // appearing twice in fire()'s follower list and double-counting
        // terminals_piggybacked.
        let mut pb = Piggyback::new(SimDuration::from_secs(300));
        pb.request_start(1, VideoId(0), t(0.0));
        assert_eq!(
            pb.request_start(2, VideoId(0), t(10.0)),
            StartDecision::JoinedBatch
        );
        assert_eq!(
            pb.request_start(2, VideoId(0), t(20.0)),
            StartDecision::Ignored
        );
        // The batch opener re-requesting is a duplicate too.
        assert_eq!(
            pb.request_start(1, VideoId(0), t(30.0)),
            StartDecision::Ignored
        );
        let (leader, followers) = pb.fire(VideoId(0));
        assert_eq!(leader, 1);
        assert_eq!(followers, vec![2]);
        assert_eq!(pb.terminals_piggybacked(), 1);
    }

    #[test]
    fn active_follower_cannot_start() {
        // Regression: a follower of a streaming group could open or join a
        // batch; if it then led (or followed) that batch, leader_of and
        // groups lost track of the original membership.
        let mut pb = Piggyback::new(SimDuration::from_secs(10));
        pb.request_start(1, VideoId(0), t(0.0));
        pb.request_start(2, VideoId(0), t(1.0));
        pb.fire(VideoId(0));
        assert!(pb.is_follower(2));
        // Terminal 2 is mid-stream behind leader 1: both opening a new
        // title and joining an open batch must be refused.
        assert_eq!(
            pb.request_start(2, VideoId(3), t(5.0)),
            StartDecision::Ignored
        );
        pb.request_start(7, VideoId(4), t(5.0));
        assert_eq!(
            pb.request_start(2, VideoId(4), t(6.0)),
            StartDecision::Ignored
        );
        let (_, followers) = pb.fire(VideoId(4));
        assert!(!followers.contains(&2));
        // Once its group dissolves the terminal may start again.
        pb.dissolve(1);
        assert!(matches!(
            pb.request_start(2, VideoId(5), t(20.0)),
            StartDecision::OpenedBatch { .. }
        ));
    }

    #[test]
    fn snapshot_round_trips_mid_batch() {
        use spiffi_simcore::{SnapReader, SnapWriter};
        let mut pb = Piggyback::new(SimDuration::from_secs(300));
        // One fired group (1 ← 2,3), one open batch on another title.
        pb.request_start(1, VideoId(0), t(0.0));
        pb.request_start(2, VideoId(0), t(1.0));
        pb.request_start(3, VideoId(0), t(2.0));
        pb.fire(VideoId(0));
        pb.request_start(7, VideoId(4), t(5.0));
        pb.request_start(5, VideoId(4), t(6.0));

        let mut w = SnapWriter::new();
        pb.snap_export(&mut w);
        let bytes = w.finish();

        let mut back = Piggyback::new(SimDuration::from_secs(300));
        let mut r = SnapReader::new(&bytes);
        back.snap_import(&mut r).unwrap();
        r.finish().unwrap();

        let mut w2 = SnapWriter::new();
        back.snap_export(&mut w2);
        assert_eq!(bytes, w2.finish(), "re-export not byte-identical");
        assert!(back.is_follower(2) && back.is_follower(3));
        assert!(!back.is_follower(1) && !back.is_follower(7));
        assert_eq!(back.terminals_piggybacked(), 2);
        assert_eq!(back.batches_fired(), 1);
        // The open batch fires with the original membership order.
        assert_eq!(back.fire(VideoId(4)), (7, vec![5]));
        assert_eq!(back.dissolve(1), vec![1, 2, 3]);
    }

    #[test]
    fn dissolve_returns_all_members() {
        let mut pb = Piggyback::new(SimDuration::from_secs(10));
        pb.request_start(1, VideoId(0), t(0.0));
        pb.request_start(2, VideoId(0), t(1.0));
        pb.fire(VideoId(0));
        let members = pb.dissolve(1);
        assert_eq!(members, vec![1, 2]);
        assert!(!pb.is_follower(2));
        // Dissolving a solo terminal (no group) returns just itself.
        assert_eq!(pb.dissolve(5), vec![5]);
    }
}

//! The SPIFFI scalable video-on-demand system (Freedman & DeWitt, SIGMOD
//! 1995) — the core simulation assembling every substrate crate into the
//! full server + terminal population, plus the experiment driver.
//!
//! # Quick start
//!
//! ```
//! use spiffi_core::{run_once, SystemConfig};
//!
//! let mut cfg = SystemConfig::small_test();
//! cfg.n_terminals = 4;
//! let report = run_once(&cfg);
//! assert!(report.glitch_free());
//! println!("{}", report.summary());
//! ```
//!
//! The paper's primary metric — the maximum number of terminals a
//! configuration supports glitch-free — is computed by
//! [`max_glitch_free_terminals`].

#![warn(missing_docs)]

pub mod bitset;
pub mod cache;
pub mod config;
pub mod driver;
pub mod journal;
pub mod metrics;
pub mod node;
pub mod piggyback;
pub mod process;
pub mod scenario;
pub mod system;
pub mod terminal;
pub mod wire;

pub use cache::{LibraryCache, LibraryKey, ProbeCache, ProbeOutcome, SnapshotCache};
pub use config::{default_prefetch_for, PauseConfig, RunTiming, SystemConfig, KB, MB};
pub use driver::{
    capacity_with_confidence, engine_threads, fan_out, max_glitch_free_terminals, replication_seed,
    run_once, run_replications, snapshot_mode_from_env, CapacityResult, CapacitySearch,
    ConfidentCapacity, ConfidentCapacityResult, Engine, SnapshotMode,
};
pub use journal::{JournalSnapshot, PhaseKind, ProbeRun, RunJournal, PHASE_COUNT};
pub use metrics::RunReport;
pub use process::{
    discover_worker_bin, ProcessConfig, ProcessPool, SnapshotBlob, WorkerFault, WorkerTelemetry,
};
// The observability layer, re-exported so instrumented callers need only
// depend on `spiffi-core`.
pub use bitset::TermBitset;
pub use piggyback::{Piggyback, StartDecision};
pub use scenario::{BitrateMix, FaultPlan, FaultSpec, PlanError, Scenario, Thresholds, Verdict};
pub use spiffi_simcore::KernelKind;
pub use spiffi_trace::{
    mean_disk_utilization_of, ForensicsDump, GlitchForensics, NoopProbe, Probe, SampleRow, Sampler,
    StreamSpan, TraceRecorder, WorkerStream,
};
pub use system::{Event, VisualSearch, VodSystem};
pub use terminal::{PlayState, Pump, Terminal};

//! The warm-snapshot fork path must be invisible in the results: forking
//! a captured base warm-up up to `n` terminals replays the exact run a
//! from-scratch marginal build at `n` produces, and a full capacity
//! search in [`SnapshotMode::Warm`] is byte-identical to the from-scratch
//! [`SnapshotMode::Cold`] reference at every thread count. Per-terminal
//! RNG streams are what make this hold: a terminal's workload draws
//! depend only on its own index, never on how many other terminals exist.
//!
//! The probe-path bugfix regressions ride along: the worker job-timeout
//! floor and the `Histogram::quantile(1.0)` contract (the auto-bracket
//! rounding fix has dedicated unit tests next to `round_to_grid` in the
//! driver).

use std::sync::atomic::AtomicU32;
use std::sync::Arc;

use spiffi_core::{
    CapacitySearch, Engine, LibraryCache, ProcessConfig, SnapshotMode, SystemConfig, VodSystem,
};
use spiffi_simcore::SimDuration;

/// The tiny single-disk configuration used throughout the core tests:
/// capacity lands in single digits and a full search takes well under a
/// second, but the workload still exercises disks, prefetching and the
/// buffer pool.
fn tiny() -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.topology = spiffi_layout::Topology {
        nodes: 1,
        disks_per_node: 1,
    };
    c.n_videos = 40;
    c.access = spiffi_mpeg::AccessPattern::Uniform;
    c.video.duration = SimDuration::from_secs(60);
    c.server_memory_bytes = 16 * 1024 * 1024;
    c.timing.stagger = SimDuration::from_secs(5);
    c.timing.warmup = SimDuration::from_secs(10);
    c.timing.measure = SimDuration::from_secs(30);
    c
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

const GOLDEN_SEEDS: [u64; 3] = [0x5eed, 0x00de_ad00_beef, u64::MAX / 7];

/// A marginal-timing config: the driver extends the warm-up by one
/// stagger window before probing, so the direct fork tests do the same.
fn marginal_cfg(n_terminals: u32, seed: u64) -> SystemConfig {
    let mut c = tiny();
    c.timing.warmup += c.timing.stagger;
    c.n_terminals = n_terminals;
    c.seed = seed;
    c
}

/// The tentpole contract at the system level: capture the base warm-up
/// once, fork to `n`, and the [`RunReport`](spiffi_core::RunReport) —
/// every field, floats bit-exact via `PartialEq` — equals the
/// from-scratch marginal build at `n`. The counted event total includes
/// the replayed prefix, so even `events_processed` matches.
#[test]
fn fork_matches_from_scratch_marginal_build() {
    let base = 2u32;
    for seed in GOLDEN_SEEDS {
        let cache = LibraryCache::new();
        let mut snap = {
            let c = marginal_cfg(base, seed);
            let lib = cache.get(&c);
            VodSystem::with_library_marginal(c, lib, base)
        };
        snap.replay_to_snapshot();
        let replayed = snap.events_processed();
        assert!(replayed > 0, "the base warm-up should process events");
        for n in [3u32, 5, 8] {
            let c = marginal_cfg(n, seed);
            let lib = cache.get(&c);
            let fresh = VodSystem::with_library_marginal(c, lib, base)
                .run_glitch_probe(&AtomicU32::new(u32::MAX), 0);
            let forked = snap
                .fork_to(n)
                .run_glitch_probe(&AtomicU32::new(u32::MAX), 0);
            assert_eq!(
                forked, fresh,
                "fork_to({n}) diverged from the from-scratch marginal build (seed {seed:#x})"
            );
        }
        // The snapshot itself is untouched by forking: fork again at a
        // count already probed and get the same bytes.
        let again = snap
            .fork_to(5)
            .run_glitch_probe(&AtomicU32::new(u32::MAX), 0);
        let c = marginal_cfg(5, seed);
        let lib = cache.get(&c);
        let fresh = VodSystem::with_library_marginal(c, lib, base)
            .run_glitch_probe(&AtomicU32::new(u32::MAX), 0);
        assert_eq!(again, fresh, "a second fork from the same snapshot drifted");
    }
}

/// The search-level gate: `SPIFFI_SNAPSHOT=1` (Warm) produces the exact
/// `CapacityResult` of the from-scratch marginal reference (Cold) — the
/// capacity, the probe log with per-probe glitch totals, the counted
/// event total and the bracket flag — at one, two and eight threads.
#[test]
fn warm_search_is_byte_identical_to_cold_at_every_thread_count() {
    let search = CapacitySearch {
        lo: 2,
        hi: 40,
        step: 2,
        replications: 2,
    };
    for seed in GOLDEN_SEEDS {
        let mut cfg = tiny();
        cfg.seed = seed;
        let reference = Engine::with_threads(1)
            .with_snapshot_mode(SnapshotMode::Cold)
            .max_glitch_free_terminals(&cfg, &search);
        for threads in THREAD_COUNTS {
            for mode in [SnapshotMode::Cold, SnapshotMode::Warm] {
                let engine = Engine::with_threads(threads).with_snapshot_mode(mode);
                let got = engine.max_glitch_free_terminals(&cfg, &search);
                assert_eq!(
                    got.max_terminals, reference.max_terminals,
                    "{mode:?} at {threads} threads changed the capacity for seed {seed:#x}"
                );
                assert_eq!(
                    got.probes, reference.probes,
                    "{mode:?} at {threads} threads changed the probe log for seed {seed:#x}"
                );
                assert_eq!(
                    got.events_processed, reference.events_processed,
                    "{mode:?} at {threads} threads changed the counted events for seed {seed:#x}"
                );
                assert_eq!(got.below_bracket, reference.below_bracket);
                if mode == SnapshotMode::Warm {
                    assert!(
                        engine.snapshot_cache().captures() > 0,
                        "the warm search never actually captured a snapshot"
                    );
                    let j = engine.journal().snapshot();
                    assert_eq!(j.snapshot_captures, engine.snapshot_cache().captures());
                    assert_eq!(j.snapshot_hits, engine.snapshot_cache().hits());
                }
            }
        }
    }
}

/// Warm forks pay off across *repeated* searches too: a second search on
/// the same warm engine (fresh probe cache withheld by using a widened
/// bracket) reuses the captured base snapshots rather than replaying the
/// warm-up.
#[test]
fn second_search_reuses_captured_snapshots() {
    let cfg = tiny();
    let engine = Engine::with_threads(1).with_snapshot_mode(SnapshotMode::Warm);
    let narrow = CapacitySearch {
        lo: 2,
        hi: 12,
        step: 2,
        replications: 2,
    };
    let wide = CapacitySearch {
        lo: 2,
        hi: 40,
        step: 2,
        replications: 2,
    };
    engine.max_glitch_free_terminals(&cfg, &narrow);
    let captures_after_first = engine.snapshot_cache().captures();
    assert!(captures_after_first > 0);
    engine.max_glitch_free_terminals(&cfg, &wide);
    assert_eq!(
        engine.snapshot_cache().captures(),
        captures_after_first,
        "the second search should fork the existing snapshots, not capture new ones"
    );
    assert!(
        engine.snapshot_cache().hits() > 0,
        "the second search never consulted the snapshot cache"
    );
}

/// With a zero stagger the marginal terminals would join exactly at the
/// measurement boundary and tie-break on schedule order, so Warm must
/// degrade to the Cold path: same answer, nothing captured.
#[test]
fn warm_degrades_to_cold_when_stagger_is_zero() {
    let mut cfg = tiny();
    cfg.timing.stagger = SimDuration::ZERO;
    let search = CapacitySearch {
        lo: 2,
        hi: 16,
        step: 2,
        replications: 1,
    };
    let cold = Engine::with_threads(1)
        .with_snapshot_mode(SnapshotMode::Cold)
        .max_glitch_free_terminals(&cfg, &search);
    let warm_engine = Engine::with_threads(1).with_snapshot_mode(SnapshotMode::Warm);
    let warm = warm_engine.max_glitch_free_terminals(&cfg, &search);
    assert_eq!(warm.max_terminals, cold.max_terminals);
    assert_eq!(warm.probes, cold.probes);
    assert_eq!(warm.events_processed, cold.events_processed);
    assert!(
        warm_engine.snapshot_cache().is_empty(),
        "a zero-stagger search must not capture snapshots"
    );
}

/// Marginal probes are cached under a different fingerprint than legacy
/// probes, so flipping the snapshot mode on a shared probe cache can
/// never cross-contaminate outcomes.
#[test]
fn snapshot_modes_do_not_share_probe_cache_entries() {
    let cfg = tiny();
    let search = CapacitySearch {
        lo: 2,
        hi: 12,
        step: 2,
        replications: 1,
    };
    let engine = Engine::with_threads(1);
    let off = engine.max_glitch_free_terminals(&cfg, &search);
    let entries_off = engine.probe_cache().len();
    let engine = Engine::with_caches(
        1,
        Arc::clone(engine.cache()),
        Arc::clone(engine.probe_cache()),
    )
    .with_snapshot_mode(SnapshotMode::Cold);
    let cold = engine.max_glitch_free_terminals(&cfg, &search);
    assert!(
        engine.probe_cache().len() > entries_off,
        "marginal probes must occupy their own cache entries"
    );
    // Both modes answer the same question; on this tiny config the
    // answers agree even though the timelines differ.
    assert_eq!(off.below_bracket, cold.below_bracket);
}

/// Regression (worker timeout floor): `SPIFFI_WORKER_TIMEOUT_MS=0` (or
/// any near-zero value) used to produce a job timeout that expired before
/// a worker could answer its first job, killing the whole pool over and
/// over. The setter now clamps to the documented floor.
#[test]
fn job_timeout_is_clamped_to_the_floor() {
    use spiffi_core::process::MIN_JOB_TIMEOUT_MS;
    let base = ProcessConfig::new(1, std::path::PathBuf::from("spiffi-worker"));
    for ms in [0u64, 1, 10, MIN_JOB_TIMEOUT_MS - 1] {
        let cfg = base.clone().with_job_timeout_ms(ms);
        assert_eq!(
            cfg.job_timeout,
            std::time::Duration::from_millis(MIN_JOB_TIMEOUT_MS),
            "{ms} ms must clamp to the floor"
        );
    }
    // At or above the floor the requested value is honored.
    for ms in [MIN_JOB_TIMEOUT_MS, 2_500, 600_000] {
        let cfg = base.clone().with_job_timeout_ms(ms);
        assert_eq!(cfg.job_timeout, std::time::Duration::from_millis(ms));
    }
}

/// Regression (`Histogram::quantile(1.0)`): p100 used to report the top
/// bin's upper edge — a value that may never have been observed — instead
/// of the recorded maximum.
#[test]
fn histogram_p100_is_the_recorded_max() {
    let mut h = spiffi_simcore::stats::Histogram::new(1.0, 10);
    for v in [0.2, 3.7, 9.1] {
        h.add(v);
    }
    assert_eq!(h.quantile(1.0), h.max());
    assert_eq!(h.quantile(1.0), 9.1);
}

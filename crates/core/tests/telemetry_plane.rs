//! The cross-process telemetry plane must be purely observational: with
//! telemetry on, workers stream probe samples, phase spans and journal
//! deltas back over the v4 wire — and the search results stay
//! byte-identical to a telemetry-off run. The merged multi-track trace
//! assembled from those streams must come out byte-identical at any
//! worker count and any arrival interleaving (the canonical-sort
//! contract), and a crashed worker's stderr tail must surface in the
//! journal's fault entries.

use std::collections::HashSet;
use std::path::PathBuf;

use spiffi_core::{
    CapacityResult, CapacitySearch, Engine, ProcessConfig, SystemConfig, WorkerStream,
};
use spiffi_simcore::SimDuration;
use spiffi_trace::merge::merged_chrome_trace;

/// The tiny single-disk configuration used throughout the core tests.
fn tiny() -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.topology = spiffi_layout::Topology {
        nodes: 1,
        disks_per_node: 1,
    };
    c.n_videos = 40;
    c.access = spiffi_mpeg::AccessPattern::Uniform;
    c.video.duration = SimDuration::from_secs(60);
    c.server_memory_bytes = 16 * 1024 * 1024;
    c.timing.stagger = SimDuration::from_secs(5);
    c.timing.warmup = SimDuration::from_secs(10);
    c.timing.measure = SimDuration::from_secs(30);
    c
}

/// One replication per probe so the counted pair set is exactly
/// `(n, 0)` for every probed count — the filter the merged-trace
/// byte-identity argument rests on.
fn search() -> CapacitySearch {
    CapacitySearch {
        lo: 2,
        hi: 40,
        step: 2,
        replications: 1,
    }
}

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_spiffi-worker"))
}

/// 1 s sampling: tiles the tiny workload's warmup and measurement windows
/// exactly.
const INTERVAL_NS: u64 = 1_000_000_000;

fn assert_same_result(got: &CapacityResult, reference: &CapacityResult, what: &str) {
    assert_eq!(
        got.max_terminals, reference.max_terminals,
        "{what} changed the capacity"
    );
    assert_eq!(got.probes, reference.probes, "{what} changed the probe log");
    assert_eq!(
        got.events_processed, reference.events_processed,
        "{what} changed the counted event total"
    );
    assert_eq!(
        got.below_bracket, reference.below_bracket,
        "{what} changed the bracket flag"
    );
}

/// Run a telemetry-on process-backed search and return the result plus
/// the counted worker streams (speculative jobs vary with pool width;
/// counted ones do not).
fn counted_streams(workers: usize) -> (CapacityResult, Vec<WorkerStream>) {
    let engine = Engine::with_threads(1)
        .with_process(ProcessConfig::new(workers, worker_bin()))
        .with_telemetry(Some(INTERVAL_NS));
    let result = engine.max_glitch_free_terminals(&tiny(), &search());
    let counted: HashSet<(u32, u32)> = result.probes.iter().map(|&(n, _)| (n, 0)).collect();
    let streams = engine
        .take_worker_telemetry()
        .into_iter()
        .filter(|s| counted.contains(&(s.terminals, s.replication)))
        .collect();
    (result, streams)
}

#[test]
fn telemetry_on_changes_no_result_bytes() {
    let cfg = tiny();
    let search = search();
    let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);

    for workers in [1, 2] {
        let engine = Engine::with_threads(1)
            .with_process(ProcessConfig::new(workers, worker_bin()))
            .with_telemetry(Some(INTERVAL_NS));
        let got = engine.max_glitch_free_terminals(&cfg, &search);
        assert_same_result(
            &got,
            &reference,
            &format!("telemetry on, {workers} workers"),
        );

        let journal = engine.journal().snapshot();
        assert!(
            journal.telemetry_frames > 0,
            "{workers} workers: no telemetry frame landed"
        );
        assert!(
            journal.telemetry_samples > 0,
            "{workers} workers: frames carried no samples"
        );
        assert_eq!(
            journal.telemetry_dropped, 0,
            "{workers} workers: healthy frames must not be dropped"
        );
        let streams = engine.take_worker_telemetry();
        assert_eq!(
            streams.len() as u64,
            journal.telemetry_frames,
            "every decoded frame must surface as a stream"
        );
        assert!(
            streams.iter().all(|s| !s.spans.is_empty()),
            "every stream carries phase spans"
        );
        // The worker deltas must populate the simulate-phase wall.
        let simulate = spiffi_core::PhaseKind::Simulate.index();
        assert!(
            journal.phase_wall_nanos[simulate] > 0,
            "worker deltas must land in the simulate phase wall"
        );
    }
}

#[test]
fn merged_trace_is_byte_identical_across_worker_counts_and_arrival_orders() {
    let (r1, s1) = counted_streams(1);
    let (r2, s2) = counted_streams(2);
    let (r4, mut s4) = counted_streams(4);
    assert_same_result(&r2, &r1, "2 workers");
    assert_same_result(&r4, &r1, "4 workers");
    assert!(!s1.is_empty(), "counted jobs must have produced streams");

    let reference = merged_chrome_trace(&[], &[], &s1, None);
    assert_eq!(
        merged_chrome_trace(&[], &[], &s2, None),
        reference,
        "2-worker merged trace diverged from the 1-worker bytes"
    );
    assert_eq!(
        merged_chrome_trace(&[], &[], &s4, None),
        reference,
        "4-worker merged trace diverged from the 1-worker bytes"
    );

    // Arrival order is whatever the pool's wait loop happened to see;
    // the canonical sort must erase it. Exercise a few deterministic
    // permutations of the same stream set.
    s4.reverse();
    assert_eq!(
        merged_chrome_trace(&[], &[], &s4, None),
        reference,
        "reversed arrival order changed the merged bytes"
    );
    let n = s4.len();
    s4.rotate_left(n / 2);
    assert_eq!(
        merged_chrome_trace(&[], &[], &s4, None),
        reference,
        "rotated arrival order changed the merged bytes"
    );
    // Duplicate deliveries (a retried job observed twice) dedupe away.
    let dup = s4[0].clone();
    s4.push(dup);
    assert_eq!(
        merged_chrome_trace(&[], &[], &s4, None),
        reference,
        "a duplicated stream changed the merged bytes"
    );
}

#[test]
fn crashed_worker_stderr_tail_lands_in_the_journal() {
    let cfg = tiny();
    let search = search();
    let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);

    let mut pcfg = ProcessConfig::new(2, worker_bin());
    pcfg.worker_env
        .push(("SPIFFI_WORKER_EXIT_AFTER".into(), "3".into()));
    let engine = Engine::with_threads(1).with_process(pcfg);
    let got = engine.max_glitch_free_terminals(&cfg, &search);
    assert_same_result(&got, &reference, "a crash-looping pool");

    let journal = engine.journal().snapshot();
    assert!(
        !journal.worker_faults.is_empty(),
        "crashes must be journaled as faults"
    );
    assert!(
        journal
            .worker_faults
            .iter()
            .any(|f| f.stderr_tail.iter().any(|l| l.contains("injected crash"))),
        "at least one fault must carry the worker's final stderr line; got {:?}",
        journal
            .worker_faults
            .iter()
            .map(|f| &f.stderr_tail)
            .collect::<Vec<_>>()
    );
    // The journal JSON renders the tails without panicking and with the
    // fault reasons escaped.
    let json = journal.to_json();
    assert!(json.contains("\"worker_faults\""));
    assert!(json.contains("injected crash"));
}

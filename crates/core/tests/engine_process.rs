//! The process-level execution backend must be invisible in the results:
//! a pool of `spiffi-worker` children at any worker count produces the
//! same bytes as the one-thread in-process engine — capacity, probe log,
//! counted events, bracket flag — because every job is a standalone
//! replication slotted by `(count, replication)`. And it must stay
//! invisible under fire: workers that crash mid-search or hang past the
//! job timeout cost retries, respawns, and quarantines (all surfaced in
//! the run journal), never a different answer.

use std::path::PathBuf;
use std::time::Duration;

use spiffi_core::{CapacityResult, CapacitySearch, Engine, ProcessConfig, SystemConfig};
use spiffi_simcore::SimDuration;

/// The tiny single-disk configuration used throughout the core tests.
fn tiny() -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.topology = spiffi_layout::Topology {
        nodes: 1,
        disks_per_node: 1,
    };
    c.n_videos = 40;
    c.access = spiffi_mpeg::AccessPattern::Uniform;
    c.video.duration = SimDuration::from_secs(60);
    c.server_memory_bytes = 16 * 1024 * 1024;
    c.timing.stagger = SimDuration::from_secs(5);
    c.timing.warmup = SimDuration::from_secs(10);
    c.timing.measure = SimDuration::from_secs(30);
    c
}

fn search() -> CapacitySearch {
    CapacitySearch {
        lo: 2,
        hi: 40,
        step: 2,
        replications: 2,
    }
}

/// The worker binary cargo built for this test run, passed explicitly so
/// parallel tests never race on process-global environment variables.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_spiffi-worker"))
}

fn assert_same_result(got: &CapacityResult, reference: &CapacityResult, what: &str) {
    assert_eq!(
        got.max_terminals, reference.max_terminals,
        "{what} changed the capacity"
    );
    assert_eq!(got.probes, reference.probes, "{what} changed the probe log");
    assert_eq!(
        got.events_processed, reference.events_processed,
        "{what} changed the counted event total"
    );
    assert_eq!(
        got.below_bracket, reference.below_bracket,
        "{what} changed the bracket flag"
    );
}

#[test]
fn process_backend_is_byte_identical_to_sequential() {
    let cfg = tiny();
    let search = search();
    let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);

    for workers in [1, 2, 4] {
        let engine =
            Engine::with_threads(1).with_process(ProcessConfig::new(workers, worker_bin()));
        assert_eq!(engine.process_workers(), workers);
        let got = engine.max_glitch_free_terminals(&cfg, &search);
        assert_same_result(&got, &reference, &format!("{workers} workers"));

        let journal = engine.journal().snapshot();
        assert!(
            journal.probes.iter().any(|p| p.worker),
            "{workers} workers: no probe was resolved by a worker process"
        );
        assert_eq!(
            journal.worker_retries, 0,
            "healthy workers should not retry"
        );
        assert_eq!(journal.quarantined_jobs, 0);

        // Same engine again: everything replays from the probe cache.
        let warm = engine.max_glitch_free_terminals(&cfg, &search);
        assert_same_result(&warm, &reference, "a warm process-backed search");
        assert_eq!(
            warm.speculative_events, 0,
            "a fully warm search has nothing left to speculate"
        );
    }
}

/// Kill-one-worker-mid-search, repeatedly: every worker incarnation dies
/// (without replying) when its second job arrives, so the search cannot
/// finish without the crash-respawn-retry path. The answer must not move.
#[test]
fn worker_crashes_retry_and_do_not_change_the_answer() {
    let cfg = tiny();
    let search = search();
    let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);

    let mut pcfg = ProcessConfig::new(2, worker_bin());
    pcfg.worker_env
        .push(("SPIFFI_WORKER_EXIT_AFTER".into(), "2".into()));
    let engine = Engine::with_threads(1).with_process(pcfg);
    let got = engine.max_glitch_free_terminals(&cfg, &search);
    assert_same_result(&got, &reference, "a crash-looping worker pool");

    let journal = engine.journal().snapshot();
    assert!(
        journal.worker_respawns > 0,
        "every incarnation dies on its second job; someone must have respawned"
    );
    assert!(
        journal.worker_retries > 0 || journal.quarantined_jobs > 0,
        "crashed jobs must be retried or quarantined"
    );
}

/// Stalled workers hit the per-job wall-clock timeout; with a single
/// attempt allowed, every job is quarantined as poisoned and the search
/// falls back to resolving each replication in-process. Slowest possible
/// pool, same exact answer.
#[test]
fn stalled_workers_time_out_into_quarantine_fallback() {
    let cfg = tiny();
    let search = search();
    let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);

    let mut pcfg = ProcessConfig::new(2, worker_bin());
    pcfg.worker_env
        .push(("SPIFFI_WORKER_STALL_MS".into(), "60000".into()));
    pcfg.job_timeout = Duration::from_millis(25);
    pcfg.max_attempts = 1;
    let engine = Engine::with_threads(1).with_process(pcfg);
    let got = engine.max_glitch_free_terminals(&cfg, &search);
    assert_same_result(&got, &reference, "a fully stalled worker pool");

    let journal = engine.journal().snapshot();
    assert!(
        journal.quarantined_jobs > 0,
        "every attempt times out at one attempt per job; jobs must quarantine"
    );
    assert!(
        journal.probes.iter().any(|p| !p.cached && !p.worker),
        "quarantined jobs must be resolved by the in-process fallback"
    );
    assert!(
        journal.probes.iter().all(|p| !p.worker),
        "no stalled worker can have produced a result"
    );
}

/// A pool pointed at a binary that does not exist must not take the
/// search down: `max_glitch_free_terminals` falls back to the in-process
/// path and still produces the reference bytes.
#[test]
fn unspawnable_pool_falls_back_to_in_process() {
    let cfg = tiny();
    let search = search();
    let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);

    let engine = Engine::with_threads(1).with_process(ProcessConfig::new(
        2,
        PathBuf::from("/nonexistent/spiffi-worker"),
    ));
    let got = engine.max_glitch_free_terminals(&cfg, &search);
    assert_same_result(&got, &reference, "the spawn-failure fallback");
    assert!(
        engine.journal().snapshot().probes.iter().all(|p| !p.worker),
        "no worker existed to resolve anything"
    );
}

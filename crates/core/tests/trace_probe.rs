//! The probe layer's contract: observation only.
//!
//! An attached probe must never perturb the simulation (same `RunReport`
//! with and without one), the recorded trace must be a pure function of
//! the run (byte-identical however many engine threads are configured
//! around it), and the sampler's time series must agree with the report's
//! window aggregates.

use spiffi_core::{
    replication_seed, run_once, CapacitySearch, Engine, Sampler, SystemConfig, TraceRecorder,
    VodSystem,
};
use spiffi_simcore::{SimDuration, SimTime};
use spiffi_trace::export;

fn cfg() -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.n_terminals = 8;
    c
}

/// Run one replication of `cfg` fully instrumented and serialize both
/// export formats.
fn trace_replication(cfg: &SystemConfig, r: u32) -> (String, String) {
    let mut c = cfg.clone();
    c.seed = replication_seed(cfg.seed, r);
    let probe = (
        TraceRecorder::new(),
        Sampler::new(
            SimDuration::from_secs(1),
            c.topology.nodes as usize,
            c.topology.disks_per_node as usize,
        ),
    );
    let library = VodSystem::generate_library(&c);
    let (_, (recorder, sampler)) = VodSystem::with_probe(c, library, probe).run_traced();
    (
        export::jsonl(recorder.events(), sampler.rows()),
        export::chrome_trace(recorder.events(), sampler.rows()),
    )
}

#[test]
fn attaching_a_probe_does_not_perturb_the_run() {
    let c = cfg();
    let baseline = run_once(&c);
    let probe = (
        TraceRecorder::new(),
        Sampler::new(
            SimDuration::from_secs(1),
            c.topology.nodes as usize,
            c.topology.disks_per_node as usize,
        ),
    );
    let library = VodSystem::generate_library(&c);
    let (traced, (recorder, _)) = VodSystem::with_probe(c, library, probe).run_traced();
    assert_eq!(baseline, traced, "an active probe changed the simulation");
    assert_eq!(
        recorder.dispatch_total(),
        traced.events_processed,
        "the recorder missed dispatches"
    );
}

#[test]
fn trace_is_byte_identical_at_any_engine_thread_count() {
    let c = cfg();
    let search = CapacitySearch {
        lo: 4,
        hi: 16,
        step: 4,
        replications: 2,
    };
    // The searches at 1, 2 and 8 threads must agree on the probe sequence
    // the trace belongs to... (everything but the speculation tally is
    // guaranteed byte-identical across thread counts)
    let results: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|t| Engine::with_threads(t).max_glitch_free_terminals(&c, &search))
        .collect();
    for r in &results[1..] {
        assert_eq!(r.max_terminals, results[0].max_terminals);
        assert_eq!(r.probes, results[0].probes);
        assert_eq!(r.events_processed, results[0].events_processed);
        assert_eq!(r.below_bracket, results[0].below_bracket);
    }
    // ...and re-tracing one of its replications yields the same bytes
    // every time: the trace is a function of (config, seed) alone.
    let mut probed = c.clone();
    probed.n_terminals = results[0].max_terminals.max(search.lo);
    let reference = trace_replication(&probed, 1);
    for _ in 0..2 {
        assert_eq!(
            trace_replication(&probed, 1),
            reference,
            "trace serialization is not deterministic"
        );
    }
    assert!(
        reference.0.lines().count() > 100,
        "suspiciously small trace"
    );
}

#[test]
fn sampler_mean_matches_the_report_window_aggregate() {
    let c = cfg();
    let sampler = Sampler::new(
        SimDuration::from_secs(1),
        c.topology.nodes as usize,
        c.topology.disks_per_node as usize,
    );
    let library = VodSystem::generate_library(&c);
    let (report, sampler) = VodSystem::with_probe(c.clone(), library, sampler).run_traced();
    let from = SimTime::ZERO + c.timing.warmup;
    let to = from + c.timing.measure;
    let sampled = sampler.mean_disk_utilization(from, to);
    let rel = (sampled - report.avg_disk_utilization).abs() / report.avg_disk_utilization;
    assert!(
        rel < 0.01,
        "sampled {} vs reported {} (rel err {:.4})",
        sampled,
        report.avg_disk_utilization,
        rel
    );
}

#[test]
fn engine_journal_accounts_for_every_probe() {
    let c = cfg();
    let search = CapacitySearch {
        lo: 4,
        hi: 16,
        step: 4,
        replications: 2,
    };
    let engine = Engine::with_threads(1);
    let first = engine.max_glitch_free_terminals(&c, &search);
    engine.max_glitch_free_terminals(&c, &search);
    let journal = engine.journal().snapshot();
    assert_eq!(journal.searches, 2);
    // Sequential resolution never speculates, so the journal's simulated
    // events are exactly the counted events of one cold search, and the
    // warm replay contributed only cache hits.
    assert_eq!(journal.speculative_events, 0);
    let simulated_events: u64 = journal
        .probes
        .iter()
        .filter(|p| !p.cached)
        .map(|p| p.events)
        .sum();
    assert_eq!(simulated_events, first.events_processed);
    assert_eq!(journal.cache_hits(), journal.simulated());
    assert!(journal.probes.iter().all(|p| p.clean));
    assert!(
        journal
            .probes
            .iter()
            .filter(|p| !p.cached)
            .all(|p| p.wall_nanos > 0),
        "simulated runs must record wall time"
    );
    let json = journal.to_json();
    assert!(json.contains("\"searches\": 2"));
    assert!(json.contains("\"cached\": true"));
}

//! The parallel experiment engine must be invisible in the results: any
//! thread count produces bit-identical reports and capacities, because
//! each replication owns its RNG and calendar and results are slotted by
//! replication index. The probe early-exit protocol is deterministic too —
//! only the prefix of replications up to the first (lowest-indexed)
//! glitching one is ever counted, and that prefix cannot depend on thread
//! scheduling.

use spiffi_core::{CapacitySearch, Engine, RunReport, SystemConfig};
use spiffi_simcore::SimDuration;

/// The tiny single-disk configuration used throughout the core tests:
/// capacity lands in single digits and a full search takes well under a
/// second, but the workload still exercises disks, prefetching and the
/// buffer pool.
fn tiny() -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.topology = spiffi_layout::Topology {
        nodes: 1,
        disks_per_node: 1,
    };
    c.n_videos = 40;
    c.access = spiffi_mpeg::AccessPattern::Uniform;
    c.video.duration = SimDuration::from_secs(60);
    c.server_memory_bytes = 16 * 1024 * 1024;
    c.timing.stagger = SimDuration::from_secs(5);
    c.timing.warmup = SimDuration::from_secs(10);
    c.timing.measure = SimDuration::from_secs(30);
    c
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Golden seeds for the capacity property: an arbitrary spread across the
/// seed space, fixed so failures reproduce.
const GOLDEN_SEEDS: [u64; 3] = [0x5eed, 0x00de_ad00_beef, u64::MAX / 7];

#[test]
fn run_replications_is_identical_at_every_thread_count() {
    let mut cfg = tiny();
    cfg.n_terminals = 6;
    let seeds: Vec<u64> = vec![1, 99, 0xabcdef, u64::MAX];

    let reference: Vec<RunReport> = Engine::with_threads(1).run_replications(&cfg, &seeds);
    assert_eq!(reference.len(), seeds.len());
    // Distinct seeds must actually produce distinct runs, or the equality
    // below would be vacuous.
    assert!(
        reference
            .iter()
            .skip(1)
            .any(|r| r.events_processed != reference[0].events_processed),
        "seeds should differentiate the runs"
    );

    for threads in THREAD_COUNTS {
        let got = Engine::with_threads(threads).run_replications(&cfg, &seeds);
        assert_eq!(got, reference, "thread count {threads} changed a report");
    }
}

#[test]
fn capacity_search_is_identical_at_every_thread_count() {
    let search = CapacitySearch {
        lo: 2,
        hi: 40,
        step: 2,
        replications: 2,
    };
    for seed in GOLDEN_SEEDS {
        let mut cfg = tiny();
        cfg.seed = seed;
        let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);
        for threads in THREAD_COUNTS {
            let got = Engine::with_threads(threads).max_glitch_free_terminals(&cfg, &search);
            assert_eq!(
                got.max_terminals, reference.max_terminals,
                "thread count {threads} changed the capacity for seed {seed:#x}"
            );
            assert_eq!(
                got.probes, reference.probes,
                "thread count {threads} changed the probe sequence for seed {seed:#x}"
            );
            assert_eq!(
                got.events_processed, reference.events_processed,
                "thread count {threads} changed the counted event total for seed {seed:#x}"
            );
        }
    }
}

/// The tentpole guarantee of the speculative search: at every thread
/// count, cold or pre-warmed, the full observable `CapacityResult` —
/// capacity, the probe log (counts *and* per-probe glitch totals), the
/// counted event total and the below-bracket flag — is byte-identical to
/// the one-thread sequential bisection. Only `speculative_events`, the
/// explicitly wall-clock-dependent waste counter, may differ.
#[test]
fn speculative_search_is_identical_to_sequential() {
    let search = CapacitySearch {
        lo: 2,
        hi: 40,
        step: 2,
        replications: 2,
    };
    for seed in GOLDEN_SEEDS {
        let mut cfg = tiny();
        cfg.seed = seed;
        let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);
        assert_eq!(
            reference.speculative_events, 0,
            "sequential resolution must not speculate"
        );
        for threads in THREAD_COUNTS {
            let engine = Engine::with_threads(threads);
            let cold = engine.max_glitch_free_terminals(&cfg, &search);
            assert_eq!(
                cold.max_terminals, reference.max_terminals,
                "thread count {threads} changed the capacity for seed {seed:#x}"
            );
            assert_eq!(
                cold.probes, reference.probes,
                "thread count {threads} changed the probe log for seed {seed:#x}"
            );
            assert_eq!(
                cold.events_processed, reference.events_processed,
                "thread count {threads} changed the counted events for seed {seed:#x}"
            );
            assert_eq!(cold.below_bracket, reference.below_bracket);

            // Same engine again: every pair replays from the probe cache.
            let warm = engine.max_glitch_free_terminals(&cfg, &search);
            assert_eq!(warm.max_terminals, reference.max_terminals);
            assert_eq!(warm.probes, reference.probes);
            assert_eq!(warm.events_processed, reference.events_processed);
            assert_eq!(
                warm.speculative_events, 0,
                "a fully warm search has nothing left to speculate"
            );
        }
    }
}

/// A probe cache pre-warmed by one engine must be a pure accelerator for
/// another: handing a parallel engine's cache to a sequential engine (and
/// vice versa) changes nothing observable.
#[test]
fn prewarmed_probe_cache_is_invisible_in_results() {
    let search = CapacitySearch {
        lo: 2,
        hi: 40,
        step: 2,
        replications: 2,
    };
    let cfg = tiny();
    let reference = Engine::with_threads(1).max_glitch_free_terminals(&cfg, &search);

    let warmer = Engine::with_threads(8);
    let warmed = warmer.max_glitch_free_terminals(&cfg, &search);
    assert_eq!(warmed.probes, reference.probes);

    for threads in THREAD_COUNTS {
        let engine = Engine::with_caches(
            threads,
            std::sync::Arc::clone(warmer.cache()),
            std::sync::Arc::clone(warmer.probe_cache()),
        );
        let got = engine.max_glitch_free_terminals(&cfg, &search);
        assert_eq!(got.max_terminals, reference.max_terminals);
        assert_eq!(got.probes, reference.probes);
        assert_eq!(got.events_processed, reference.events_processed);
        assert_eq!(got.below_bracket, reference.below_bracket);
        assert_eq!(
            got.speculative_events, 0,
            "a pre-warmed search at {threads} threads re-simulated something"
        );
    }
}

#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<spiffi_core::LibraryCache>();
    // The pieces a worker thread owns outright: the simulation kernel's
    // RNG and calendar, and the whole assembled system.
    assert_send::<spiffi_simcore::SimRng>();
    assert_send::<spiffi_simcore::Calendar<spiffi_core::Event>>();
    assert_send::<spiffi_core::VodSystem>();
    assert_send::<spiffi_core::RunReport>();
}

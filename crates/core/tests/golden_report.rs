//! Golden-report regression test.
//!
//! Determinism is sacred: for a fixed seed and configuration, the
//! simulator must produce a byte-identical [`RunReport`] across code
//! changes that claim to be behavior-preserving (e.g. the allocation-free
//! scheduler/disk hot-path rewrites). These constants were captured when
//! workload randomness moved to per-terminal RNG streams (the
//! snapshot/fork contract); any drift in them means the observable
//! simulation changed, not just its speed.
//!
//! Float fields are compared by `to_bits()` — "byte-identical" means
//! exactly that, not approximately equal.

use spiffi_core::{run_once, KernelKind, RunReport, SystemConfig, VodSystem};
use spiffi_mpeg::AccessPattern;
use spiffi_sched::SchedulerKind;
use spiffi_simcore::SimDuration;

fn tiny(scheduler: SchedulerKind, n_terminals: u32) -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.topology = spiffi_layout::Topology {
        nodes: 1,
        disks_per_node: 2,
    };
    c.n_videos = 40;
    c.access = AccessPattern::Uniform;
    c.video.duration = SimDuration::from_secs(60);
    c.server_memory_bytes = 16 * 1024 * 1024;
    c.timing.stagger = SimDuration::from_secs(5);
    c.timing.warmup = SimDuration::from_secs(10);
    c.timing.measure = SimDuration::from_secs(30);
    c.scheduler = scheduler;
    c.n_terminals = n_terminals;
    c.seed = 0x5b1ff1;
    c
}

/// One golden row: the integer core of the report plus bit-exact floats.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    glitches: u64,
    blocks_delivered: u64,
    videos_completed: u64,
    events_processed: u64,
    deadline_misses: u64,
    avg_disk_utilization_bits: u64,
    net_peak_bits: u64,
    io_latency_mean_bits: u64,
}

fn capture(scheduler: SchedulerKind, n_terminals: u32) -> Golden {
    let r = run_once(&tiny(scheduler, n_terminals));
    Golden {
        glitches: r.glitches,
        blocks_delivered: r.blocks_delivered,
        videos_completed: r.videos_completed,
        events_processed: r.events_processed,
        deadline_misses: r.deadline_misses,
        avg_disk_utilization_bits: r.avg_disk_utilization.to_bits(),
        net_peak_bits: r.net_peak_bytes_per_sec.to_bits(),
        io_latency_mean_bits: r.io_latency_mean_ms.to_bits(),
    }
}

#[test]
fn golden_realtime() {
    let g = capture(
        SchedulerKind::RealTime {
            classes: 3,
            spacing: SimDuration::from_secs(4),
        },
        8,
    );
    println!("GOLDEN realtime: {g:?}");
    assert_eq!(
        g,
        Golden {
            glitches: 0,
            blocks_delivered: 229,
            videos_completed: 0,
            events_processed: 2441,
            deadline_misses: 0,
            avg_disk_utilization_bits: 4597346758475504232,
            net_peak_bits: 4707390259288080384,
            io_latency_mean_bits: 4635123579290191049,
        }
    );
}

#[test]
fn golden_elevator() {
    let g = capture(SchedulerKind::Elevator, 40);
    println!("GOLDEN elevator: {g:?}");
    assert_eq!(
        g,
        Golden {
            glitches: 107,
            blocks_delivered: 1035,
            videos_completed: 0,
            events_processed: 10196,
            deadline_misses: 89,
            avg_disk_utilization_bits: 4607174054898085960,
            net_peak_bits: 4716537989872746496,
            io_latency_mean_bits: 4652885962662289357,
        }
    );
}

#[test]
fn golden_gss() {
    let g = capture(SchedulerKind::Gss { groups: 4 }, 40);
    println!("GOLDEN gss: {g:?}");
    assert_eq!(
        g,
        Golden {
            glitches: 45,
            blocks_delivered: 1024,
            videos_completed: 0,
            events_processed: 10008,
            deadline_misses: 57,
            avg_disk_utilization_bits: 4607182418800017408,
            net_peak_bits: 4716256514896035840,
            io_latency_mean_bits: 4652994685457242973,
        }
    );
}

/// Project a report onto the golden row (same fields as [`capture`]).
fn golden_of(r: &RunReport) -> Golden {
    Golden {
        glitches: r.glitches,
        blocks_delivered: r.blocks_delivered,
        videos_completed: r.videos_completed,
        events_processed: r.events_processed,
        deadline_misses: r.deadline_misses,
        avg_disk_utilization_bits: r.avg_disk_utilization.to_bits(),
        net_peak_bits: r.net_peak_bytes_per_sec.to_bits(),
        io_latency_mean_bits: r.io_latency_mean_ms.to_bits(),
    }
}

/// The bucket-queue kernel swap must be invisible: the calendar's
/// lifetime accounting (`scheduled_total`, `len`) at the snapshot
/// boundary and the full golden report of a snapshot-fork run must be
/// byte-identical under both kernels — and under a mid-run swap from one
/// kernel to the other.
#[test]
fn kernel_swap_preserves_calendar_accounting_and_reports() {
    let base = 8u32;
    let total = 12u32;
    let cfg = {
        let mut c = tiny(SchedulerKind::Elevator, total);
        c.timing.measure = SimDuration::from_secs(20);
        c
    };
    let lib = VodSystem::generate_library(&cfg);

    // (accounting at the snapshot point, golden row of the forked run)
    let run_with = |kind: KernelKind, swap_to: Option<KernelKind>| {
        let mut bc = cfg.clone();
        bc.n_terminals = base;
        let mut sys = VodSystem::with_library(bc, lib.clone());
        sys.set_calendar_kernel(kind);
        sys.replay_to_snapshot();
        if let Some(other) = swap_to {
            sys.set_calendar_kernel(other);
        }
        let accounting = (
            sys.pending_events(),
            sys.scheduled_events_total(),
            sys.events_processed(),
        );
        (accounting, golden_of(&sys.fork_to(total).run()))
    };

    let bucket = run_with(KernelKind::Bucket, None);
    let heap = run_with(KernelKind::Heap, None);
    let swapped = run_with(KernelKind::Heap, Some(KernelKind::Bucket));
    println!(
        "kernel accounting (pending, scheduled, processed): {:?}",
        bucket.0
    );
    assert!(bucket.0 .0 > 0, "snapshot must leave events pending");
    assert!(
        bucket.0 .1 >= bucket.0 .2 + bucket.0 .0 as u64,
        "scheduled_total must cover processed + pending events"
    );
    assert_eq!(
        bucket.0, heap.0,
        "calendar accounting diverged across kernels"
    );
    assert_eq!(bucket.1, heap.1, "forked report diverged across kernels");
    assert_eq!(bucket, swapped, "mid-run kernel swap was visible");
}

#[test]
fn golden_overloaded_realtime() {
    // Over capacity: glitches must be non-zero and still byte-stable.
    let g = capture(
        SchedulerKind::RealTime {
            classes: 3,
            spacing: SimDuration::from_secs(4),
        },
        40,
    );
    println!("GOLDEN overloaded: {g:?}");
    assert_eq!(
        g,
        Golden {
            glitches: 67,
            blocks_delivered: 1056,
            videos_completed: 0,
            events_processed: 10361,
            deadline_misses: 64,
            avg_disk_utilization_bits: 4607175913465347582,
            net_peak_bits: 4716538161671438336,
            io_latency_mean_bits: 4652513707330735653,
        }
    );
}

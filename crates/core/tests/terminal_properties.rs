//! Randomized property tests of the terminal state machine under
//! adversarial block-delivery schedules: memory bounds are respected,
//! requests are never duplicated or lost, consumption is monotone, and a
//! terminal that is served promptly never glitches. Driven by the
//! deterministic [`SimRng`] so failures reproduce from the printed seed.

use std::collections::VecDeque;

use spiffi_core::terminal::{PlayState, Terminal};
use spiffi_mpeg::{Video, VideoId, VideoParams};
use spiffi_simcore::{SimDuration, SimRng, SimTime};

const BB: u64 = 512 * 1024;

fn video(secs: u64, seed: u64) -> Video {
    Video::generate(
        VideoId(0),
        VideoParams {
            duration: SimDuration::from_secs(secs),
            ..VideoParams::default()
        },
        seed,
    )
}

/// Drive a terminal with randomized delivery delays and reordering.
/// Whatever the server does, the terminal must (a) never request a block
/// twice, (b) never exceed its buffer memory with buffered + outstanding
/// data, (c) consume monotonically.
#[test]
fn memory_and_request_invariants() {
    for case in 0..48u64 {
        let mut rng = SimRng::stream(0x7e44, case);
        let vseed = rng.next_u64_raw();
        let n_delays = 4 + rng.index(116);
        let delays_ms: Vec<u64> = (0..n_delays).map(|_| 1 + rng.u64_below(2999)).collect();
        let reorder = rng.chance(0.5);

        let v = video(45, vseed);
        let total_blocks = v.total_bytes().div_ceil(BB) as u32;
        let capacity = 2 * 1024 * 1024u64;
        let mut term = Terminal::new(0, capacity);
        term.start_video(&v, BB, 0, vec![]);

        let mut now = SimTime::ZERO;
        let mut pending: VecDeque<u32> = VecDeque::new();
        let mut requested = vec![false; total_blocks as usize];
        let mut delivered = 0u32;

        let absorb = |requests: &[u32], pending: &mut VecDeque<u32>, requested: &mut Vec<bool>| {
            for &r in requests {
                assert!(
                    !requested[r as usize],
                    "case {case}: block {r} requested twice"
                );
                requested[r as usize] = true;
                pending.push_back(r);
            }
        };

        let p = term.pump(&v, BB, now);
        absorb(&p.requests, &mut pending, &mut requested);
        let mut next_wake = p.wake_at;

        for (i, &d) in delays_ms.iter().enumerate() {
            // Interleave deliveries and wake pumps at randomized times.
            now += SimDuration::from_millis(d);
            if let Some(w) = next_wake {
                if w <= now {
                    // Honour the wake first, at its exact instant.
                    let p = term.pump(&v, BB, w);
                    absorb(&p.requests, &mut pending, &mut requested);
                    next_wake = p.wake_at;
                }
            }
            // Deliver one pending block (possibly out of order).
            let take = if reorder && pending.len() > 1 && i % 3 == 0 {
                pending.remove(1)
            } else {
                pending.pop_front()
            };
            if let Some(b) = take {
                assert!(
                    term.on_block_arrival(&v, BB, b, term.epoch()),
                    "case {case}"
                );
                delivered += 1;
                let p = term.pump(&v, BB, now.max(SimTime::ZERO));
                absorb(&p.requests, &mut pending, &mut requested);
                next_wake = p.wake_at;
            }
            // Invariant: buffered data never exceeds terminal memory.
            assert!(
                term.buffered_bytes() <= capacity,
                "case {case}: buffered {} > capacity {capacity}",
                term.buffered_bytes()
            );
        }
        assert_eq!(term.blocks_received(), delivered as u64, "case {case}");
    }
}

/// A terminal whose every request is satisfied instantly never glitches
/// and finishes exactly at the title length.
#[test]
fn instant_service_never_glitches() {
    for case in 0..48u64 {
        let mut rng = SimRng::stream(0x1457, case);
        let vseed = rng.next_u64_raw();
        let secs = 4 + rng.u64_below(26);
        let v = video(secs, vseed);
        let mut term = Terminal::new(0, 2 * 1024 * 1024);
        term.start_video(&v, BB, 0, vec![]);
        let mut now = SimTime::ZERO;
        let mut p = term.pump(&v, BB, now);
        let mut guard = 0;
        loop {
            for b in p.requests.clone() {
                assert!(
                    term.on_block_arrival(&v, BB, b, term.epoch()),
                    "case {case}"
                );
            }
            if !p.requests.is_empty() {
                p = term.pump(&v, BB, now);
                continue;
            }
            match p.wake_at {
                None => break,
                Some(w) => {
                    now = w;
                    p = term.pump(&v, BB, now);
                }
            }
            guard += 1;
            assert!(guard < 100_000, "case {case}: did not terminate");
        }
        assert_eq!(term.glitches_total(), 0, "case {case}");
        assert_eq!(term.videos_completed(), 1, "case {case}");
        assert_eq!(term.state(), PlayState::Finished, "case {case}");
        // Playback of an N-second title takes at least N seconds.
        assert!(now.as_secs_f64() >= secs as f64, "case {case}");
        // …and no more than N seconds plus the priming instant.
        assert!(now.as_secs_f64() <= secs as f64 + 1.0, "case {case}");
    }
}

/// With a pause plan, total wall time extends by at least the pause
/// durations that fall within the title, and still no glitch occurs under
/// instant service.
#[test]
fn pauses_extend_wall_time() {
    for case in 0..48u64 {
        let mut rng = SimRng::stream(0x9a05e, case);
        let vseed = rng.next_u64_raw();
        let pause_at_sec = 1 + rng.u64_below(4);
        let pause_secs = 1 + rng.u64_below(19);
        let secs = 10u64;
        let v = video(secs, vseed);
        let mut term = Terminal::new(0, 2 * 1024 * 1024);
        let pause_frame = pause_at_sec * 30;
        term.start_video(
            &v,
            BB,
            0,
            vec![(pause_frame, SimDuration::from_secs(pause_secs))],
        );
        let mut now = SimTime::ZERO;
        let mut p = term.pump(&v, BB, now);
        let mut guard = 0;
        loop {
            for b in p.requests.clone() {
                assert!(
                    term.on_block_arrival(&v, BB, b, term.epoch()),
                    "case {case}"
                );
            }
            if !p.requests.is_empty() {
                p = term.pump(&v, BB, now);
                continue;
            }
            match p.wake_at {
                None => break,
                Some(w) => {
                    now = w;
                    p = term.pump(&v, BB, now);
                }
            }
            guard += 1;
            assert!(guard < 100_000, "case {case}");
        }
        assert_eq!(term.glitches_total(), 0, "case {case}");
        assert_eq!(term.videos_completed(), 1, "case {case}");
        assert!(
            now.as_secs_f64() >= (secs + pause_secs) as f64,
            "case {case}: finished at {now} despite a {pause_secs}s pause"
        );
    }
}

//! Regression guard for event-loop allocations.
//!
//! The steady-state event loop recycles its per-wake request buffer
//! (`Terminal::pump_reusing`) and per-I/O waiter buffer
//! (`BufferPool::complete_io_into`), and buffer-pool frames keep their
//! waiter vectors across recycling. Losing any of those would put an
//! allocation back on a per-event path, multiplying the count measured
//! here by orders of magnitude. The golden-report tests pin the
//! *behaviour* of the reuse paths; this pins their *cost*.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use spiffi_core::{SystemConfig, VodSystem};
use spiffi_simcore::SimDuration;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn cfg(measure_secs: u64) -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.topology = spiffi_layout::Topology {
        nodes: 1,
        disks_per_node: 1,
    };
    c.n_videos = 40;
    c.n_terminals = 8;
    c.access = spiffi_mpeg::AccessPattern::Uniform;
    c.video.duration = SimDuration::from_secs(60);
    c.server_memory_bytes = 16 * 1024 * 1024;
    c.timing.stagger = SimDuration::from_secs(5);
    c.timing.warmup = SimDuration::from_secs(10);
    c.timing.measure = SimDuration::from_secs(measure_secs);
    c
}

/// Allocations made while running `cfg` (construction included).
fn allocs_for_run(c: &SystemConfig) -> (u64, u64) {
    let sys = VodSystem::new(c.clone());
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = sys.run();
    let after = ALLOCS.load(Ordering::Relaxed);
    (after - before, report.events_processed)
}

/// One test (not several racing ones) so the global counter attributes
/// allocations unambiguously.
#[test]
fn event_loop_allocations_do_not_scale_with_events() {
    // Warm up so lazy one-time allocations (stdio, test harness) settle.
    let _ = allocs_for_run(&cfg(5));

    let (short_allocs, short_events) = allocs_for_run(&cfg(60));
    let (long_allocs, long_events) = allocs_for_run(&cfg(600));

    assert!(long_events > short_events + 10_000, "workload too small");
    let extra_allocs = long_allocs.saturating_sub(short_allocs);
    let extra_events = long_events - short_events;

    // The extra 100 simulated seconds cost tens of thousands of events.
    // What may still allocate over that span: title rollovers (pause plans,
    // piggyback bookkeeping), calendar/BTreeSet node churn — all far rarer
    // than events. Per-wake request vectors or per-I/O waiter vectors
    // would add roughly one allocation per delivered block (~one per 8
    // events); requiring <2% of extra events keeps an order of magnitude
    // of slack on both sides.
    assert!(
        (extra_allocs as f64) < 0.02 * extra_events as f64,
        "event loop allocates per event again: {extra_allocs} allocations \
         over {extra_events} events"
    );
}

//! End-to-end integration tests spanning every crate: configurations are
//! assembled exactly as the experiment harness does, run through the full
//! event loop, and checked against the paper's qualitative claims.

use spiffi_vod::core::config::InitialPosition;
use spiffi_vod::prelude::*;

/// One node, two disks, memory far below the working set, uniform access
/// over enough titles that streams rarely coincide.
fn disk_bound_config() -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.topology = Topology {
        nodes: 1,
        disks_per_node: 2,
    };
    c.n_videos = 40;
    c.access = AccessPattern::Uniform;
    c.server_memory_bytes = 24 * 1024 * 1024;
    c.initial_position = InitialPosition::UniformWithinVideo;
    c.timing = RunTiming {
        stagger: SimDuration::from_secs(5),
        warmup: SimDuration::from_secs(15),
        measure: SimDuration::from_secs(45),
    };
    c
}

#[test]
fn light_load_streams_glitch_free() {
    let mut c = disk_bound_config();
    c.n_terminals = 6;
    let r = run_once(&c);
    assert!(r.glitch_free(), "{}", r.summary());
    assert!(
        r.blocks_delivered > 100,
        "too little data moved: {}",
        r.summary()
    );
}

#[test]
fn heavy_load_glitches() {
    let mut c = disk_bound_config();
    c.n_terminals = 60; // two disks stream ~25-30 at 4 Mbit/s
    let r = run_once(&c);
    assert!(!r.glitch_free(), "60 terminals on 2 disks cannot be clean");
    assert!(
        r.glitching_terminals > 1,
        "overload should spread across terminals"
    );
}

#[test]
fn identical_seeds_reproduce_bit_identical_reports() {
    let mut c = disk_bound_config();
    c.n_terminals = 20;
    let a = run_once(&c);
    let b = run_once(&c);
    assert_eq!(a.glitches, b.glitches);
    assert_eq!(a.blocks_delivered, b.blocks_delivered);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.pool.lookups, b.pool.lookups);
    assert_eq!(a.net_peak_bytes_per_sec, b.net_peak_bytes_per_sec);
}

#[test]
fn different_seeds_differ() {
    let mut c = disk_bound_config();
    c.n_terminals = 20;
    let a = run_once(&c);
    c.seed ^= 0xdead_beef;
    let b = run_once(&c);
    assert_ne!(
        (a.blocks_delivered, a.events_processed),
        (b.blocks_delivered, b.events_processed)
    );
}

#[test]
fn utilizations_and_rates_are_sane() {
    let mut c = disk_bound_config();
    c.n_terminals = 20;
    let r = run_once(&c);
    for &u in &r.disk_utilizations {
        assert!((0.0..=1.0).contains(&u), "disk util {u}");
    }
    assert!(r.max_disk_utilization >= r.avg_disk_utilization);
    assert!(r.avg_disk_utilization >= r.min_disk_utilization);
    assert!((0.0..=1.0).contains(&r.avg_cpu_utilization));
    assert!(r.net_peak_bytes_per_sec >= r.net_mean_bytes_per_sec * 0.99);
    // 20 terminals at 4 Mbit/s = 10 MB/s of video payload; the network
    // must at least carry that.
    assert!(
        r.net_mean_bytes_per_sec > 9.5e6,
        "mean network rate {:.1} MB/s too low",
        r.net_mean_bytes_per_sec / 1e6
    );
}

#[test]
fn every_scheduler_runs_clean_under_light_load() {
    for k in [
        SchedulerKind::Fcfs,
        SchedulerKind::Elevator,
        SchedulerKind::RoundRobin,
        SchedulerKind::Gss { groups: 1 },
        SchedulerKind::Gss { groups: 4 },
        SchedulerKind::RealTime {
            classes: 3,
            spacing: SimDuration::from_secs(4),
        },
        SchedulerKind::RealTime {
            classes: 2,
            spacing: SimDuration::from_secs(4),
        },
    ] {
        let mut c = disk_bound_config().with_scheduler(k);
        c.n_terminals = 8;
        let r = run_once(&c);
        assert!(r.glitch_free(), "{} glitched: {}", k.label(), r.summary());
    }
}

#[test]
fn both_policies_and_all_prefetchers_run_clean() {
    for policy in [PolicyKind::GlobalLru, PolicyKind::LovePrefetch] {
        for prefetch in [
            PrefetchKind::Off,
            PrefetchKind::Standard { processes: 2 },
            PrefetchKind::RealTime { processes: 4 },
            PrefetchKind::Delayed {
                processes: 4,
                max_advance: SimDuration::from_secs(8),
            },
        ] {
            let mut c = disk_bound_config();
            c.policy = policy;
            c.prefetch = prefetch;
            c.n_terminals = 8;
            let r = run_once(&c);
            assert!(
                r.glitch_free(),
                "{}/{} glitched: {}",
                policy.label(),
                prefetch.label(),
                r.summary()
            );
        }
    }
}

#[test]
fn non_striped_layout_skews_disk_load() {
    // Figure 14's mechanism: under a skewed workload the non-striped
    // layout overloads the disks holding popular titles while others
    // idle; striping balances them.
    let mut striped = disk_bound_config();
    striped.topology = Topology {
        nodes: 2,
        disks_per_node: 2,
    };
    striped.n_videos = 16;
    striped.access = AccessPattern::Zipf(1.0);
    striped.n_terminals = 16;

    let mut non_striped = striped.clone();
    non_striped.placement = Placement::NonStriped;

    let rs = run_once(&striped);
    let rn = run_once(&non_striped);

    let spread_s = rs.max_disk_utilization - rs.min_disk_utilization;
    let spread_n = rn.max_disk_utilization - rn.min_disk_utilization;
    assert!(
        spread_n > spread_s + 0.1,
        "non-striped spread {spread_n:.2} should far exceed striped {spread_s:.2}"
    );
}

#[test]
fn skewed_access_increases_shared_references() {
    // Figure 16's mechanism: more skew -> more terminals watching the same
    // titles -> more buffer-pool pages re-referenced by another terminal.
    let mut base = disk_bound_config();
    base.topology = Topology {
        nodes: 2,
        disks_per_node: 2,
    };
    base.n_videos = 16;
    base.n_terminals = 24;
    base.server_memory_bytes = 512 * 1024 * 1024;

    let mut uniform = base.clone();
    uniform.access = AccessPattern::Uniform;
    let mut skewed = base.clone();
    skewed.access = AccessPattern::Zipf(1.5);

    let ru = run_once(&uniform);
    let rk = run_once(&skewed);
    assert!(
        rk.pool.shared_reference_rate() > ru.pool.shared_reference_rate(),
        "zipf {:.3} should exceed uniform {:.3}",
        rk.pool.shared_reference_rate(),
        ru.pool.shared_reference_rate()
    );
}

#[test]
fn pauses_do_not_hurt_capacity() {
    // Figure 19: "performance is essentially unaffected by the pausing."
    let mut plain = disk_bound_config();
    plain.n_terminals = 20;
    let mut pausing = plain.clone();
    pausing.pause = Some(PauseConfig::default());

    let rp = run_once(&plain);
    let rq = run_once(&pausing);
    assert!(rp.glitch_free(), "baseline run glitched");
    assert!(
        rq.glitches <= 1,
        "pausing should not introduce glitches: {}",
        rq.summary()
    );
    // Paused terminals consume slightly less, never more.
    assert!(rq.blocks_delivered <= rp.blocks_delivered + rp.blocks_delivered / 10);
}

#[test]
fn piggybacking_reduces_server_load_for_aligned_starts() {
    let mut c = disk_bound_config();
    c.n_videos = 8;
    c.access = AccessPattern::Zipf(1.5);
    c.initial_position = InitialPosition::Start;
    c.n_terminals = 24;

    let plain = run_once(&c);
    let mut batched_cfg = c.clone();
    batched_cfg.piggyback_delay = Some(SimDuration::from_secs(20));
    let batched = run_once(&batched_cfg);

    assert!(batched.terminals_piggybacked > 0, "no batching happened");
    assert!(
        batched.avg_disk_utilization < plain.avg_disk_utilization,
        "piggybacking should lower disk load: {:.2} vs {:.2}",
        batched.avg_disk_utilization,
        plain.avg_disk_utilization
    );
}

#[test]
fn delayed_prefetch_bounds_memory_residency() {
    // Delayed prefetching exists to keep prefetched pages from sitting in
    // memory; with a small pool it must waste fewer prefetches than the
    // unconstrained real-time prefetcher under global LRU.
    let rt = SchedulerKind::RealTime {
        classes: 3,
        spacing: SimDuration::from_secs(4),
    };
    let mut eager = disk_bound_config().with_scheduler(rt);
    eager.policy = PolicyKind::GlobalLru;
    eager.prefetch = PrefetchKind::RealTime { processes: 6 };
    eager.server_memory_bytes = 12 * 1024 * 1024;
    eager.n_terminals = 16;

    let mut delayed = eager.clone();
    delayed.prefetch = PrefetchKind::Delayed {
        processes: 6,
        max_advance: SimDuration::from_secs(4),
    };

    let re = run_once(&eager);
    let rd = run_once(&delayed);
    let waste = |r: &RunReport| {
        if r.pool.prefetch_inserts == 0 {
            0.0
        } else {
            r.pool.prefetch_wasted as f64 / r.pool.prefetch_inserts as f64
        }
    };
    assert!(
        waste(&rd) <= waste(&re) + 0.02,
        "delayed waste {:.3} vs eager waste {:.3}",
        waste(&rd),
        waste(&re)
    );
}

#[test]
fn terminals_rotate_through_titles() {
    // Closed-loop behaviour: with short titles, terminals finish and pick
    // new ones, so completions accumulate.
    let mut c = disk_bound_config();
    c.video.duration = SimDuration::from_secs(30);
    c.n_videos = 40;
    c.n_terminals = 6;
    let r = run_once(&c);
    assert!(
        r.videos_completed >= 6,
        "expected rollovers, got {}",
        r.videos_completed
    );
    assert!(r.glitch_free());
}

#[test]
fn cpu_is_never_the_bottleneck_at_paper_scale_ratios() {
    // Figure 17's claim at small scale: disks saturate long before CPUs.
    let mut c = disk_bound_config();
    c.n_terminals = 30;
    let r = run_once(&c);
    assert!(
        r.avg_cpu_utilization < 0.2,
        "CPU should be nearly idle: {:.2}",
        r.avg_cpu_utilization
    );
    assert!(r.avg_disk_utilization > r.avg_cpu_utilization * 2.0);
}

#[test]
fn tiny_pool_exercises_allocation_retry_without_deadlock() {
    // Force the §7.3 "ran out of free pages" path: a pool barely larger
    // than the in-flight set. Requests must still all complete via the
    // pending-read retry path.
    let mut c = disk_bound_config();
    c.server_memory_bytes = 4 * 1024 * 1024; // 8 frames per... 1 node = 8 frames
    c.n_terminals = 10;
    c.prefetch = PrefetchKind::Standard { processes: 2 };
    let r = run_once(&c);
    assert!(r.blocks_delivered > 100, "starved: {}", r.summary());
    assert!(
        r.pool.alloc_failures > 0,
        "expected allocation pressure: {:?}",
        r.pool
    );
}

#[test]
fn prefetching_raises_the_pool_hit_rate() {
    let mut off = disk_bound_config();
    off.n_terminals = 12;
    off.prefetch = PrefetchKind::Off;
    let mut on = off.clone();
    on.prefetch = PrefetchKind::Standard { processes: 2 };

    let r_off = run_once(&off);
    let r_on = run_once(&on);
    assert!(r_on.pool.prefetch_inserts > 0);
    assert!(
        r_on.pool.hit_rate() > r_off.pool.hit_rate() + 0.2,
        "prefetch hit rate {:.2} vs {:.2}",
        r_on.pool.hit_rate(),
        r_off.pool.hit_rate()
    );
}

#[test]
fn delayed_prefetch_release_timers_fire() {
    // With a large advance window the delayed prefetcher must hold
    // requests back and still complete them via release timers.
    let rt = SchedulerKind::RealTime {
        classes: 3,
        spacing: SimDuration::from_secs(4),
    };
    let mut c = disk_bound_config().with_scheduler(rt);
    // The advance window must exceed the terminals' ~4.2 s request lead
    // (2 MB buffers) or demand reads supersede every held-back prefetch —
    // the failure mode §7.3 reports for delayed(4 s).
    c.prefetch = PrefetchKind::Delayed {
        processes: 4,
        max_advance: SimDuration::from_secs(5),
    };
    c.n_terminals = 10;
    let r = run_once(&c);
    assert!(r.glitch_free(), "{}", r.summary());
    assert!(
        r.prefetch.issued > 0,
        "no prefetches issued: {:?}",
        r.prefetch
    );
    assert!(
        r.prefetch.completed + r.prefetch.aborted <= r.prefetch.issued,
        "{:?}",
        r.prefetch
    );
}

#[test]
fn too_small_advance_window_loses_to_demand() {
    // The inverse case: with an advance window below the terminals'
    // request lead, demand reads cancel the held-back prefetches.
    let rt = SchedulerKind::RealTime {
        classes: 3,
        spacing: SimDuration::from_secs(4),
    };
    let mut c = disk_bound_config().with_scheduler(rt);
    c.prefetch = PrefetchKind::Delayed {
        processes: 4,
        max_advance: SimDuration::from_secs(2),
    };
    c.n_terminals = 10;
    let r = run_once(&c);
    assert!(
        r.prefetch.cancelled > r.prefetch.issued,
        "demand should supersede most held-back prefetches: {:?}",
        r.prefetch
    );
}

#[test]
fn gss_group_count_spans_elevator_to_round_robin() {
    // §5.2.2: GSS with one group ≈ elevator; with many groups ≈
    // round-robin. All points must at least run cleanly at light load and
    // deliver the same data volume.
    let mut base = disk_bound_config();
    base.n_terminals = 10;
    let mut volumes = Vec::new();
    for groups in [1u32, 4, 16, 64] {
        let c = base.clone().with_scheduler(SchedulerKind::Gss { groups });
        let r = run_once(&c);
        assert!(r.glitch_free(), "gss({groups}): {}", r.summary());
        volumes.push(r.blocks_delivered);
    }
    let min = volumes.iter().min().unwrap();
    let max = volumes.iter().max().unwrap();
    assert!(
        (max - min) * 20 < *max,
        "group count changed light-load volume too much: {volumes:?}"
    );
}

#[test]
fn io_latency_statistics_are_populated_and_ordered() {
    let mut c = disk_bound_config();
    c.n_terminals = 20;
    let r = run_once(&c);
    assert!(r.io_latency_mean_ms > 0.0);
    assert!(r.io_latency_p95_ms >= r.io_latency_mean_ms * 0.5);
    assert!(r.io_latency_max_ms >= r.io_latency_p95_ms);
    // A 512 KB read takes at least ~68 ms of pure transfer.
    assert!(
        r.io_latency_mean_ms > 50.0,
        "mean latency {:.1} ms implausibly low",
        r.io_latency_mean_ms
    );
}

#[test]
fn deadline_aware_scheduling_reduces_deadline_misses() {
    // Near saturation, FCFS lets urgent requests languish behind old ones;
    // the real-time scheduler reorders by deadline and must miss fewer.
    let mut fcfs = disk_bound_config().with_scheduler(SchedulerKind::Fcfs);
    fcfs.n_terminals = 26;
    let mut rt = disk_bound_config().with_scheduler(SchedulerKind::RealTime {
        classes: 3,
        spacing: SimDuration::from_secs(4),
    });
    rt.n_terminals = 26;

    let r_fcfs = run_once(&fcfs);
    let r_rt = run_once(&rt);
    assert!(
        r_rt.deadline_misses <= r_fcfs.deadline_misses,
        "real-time missed {} deadlines vs fcfs {}",
        r_rt.deadline_misses,
        r_fcfs.deadline_misses
    );
}

#[test]
fn edf_runs_clean_at_light_load_and_misses_under_overload() {
    let mut c = disk_bound_config().with_scheduler(SchedulerKind::Edf);
    c.n_terminals = 8;
    let light = run_once(&c);
    assert!(light.glitch_free(), "{}", light.summary());
    c.n_terminals = 60;
    let heavy = run_once(&c);
    assert!(
        heavy.deadline_misses > 0,
        "EDF under overload must miss deadlines"
    );
}

#[test]
fn stripe_group_width_interpolates_between_layouts() {
    // Width 1 behaves like non-striped (skewed load); width = all disks
    // behaves like full striping (balanced load).
    let mut base = disk_bound_config();
    base.topology = Topology {
        nodes: 2,
        disks_per_node: 2,
    };
    base.n_videos = 16;
    base.access = AccessPattern::Zipf(1.2);
    base.n_terminals = 16;

    let spread = |placement| {
        let mut c = base.clone();
        c.placement = placement;
        let r = run_once(&c);
        r.max_disk_utilization - r.min_disk_utilization
    };
    let narrow = spread(Placement::StripeGroup { width: 1 });
    let wide = spread(Placement::StripeGroup { width: 4 });
    let full = spread(Placement::Striped);
    assert!(
        narrow > wide + 0.1,
        "narrow groups should skew load: {narrow:.2} vs {wide:.2}"
    );
    assert!(
        (wide - full).abs() < 0.1,
        "width=all should match full striping: {wide:.2} vs {full:.2}"
    );
}

#[test]
fn user_seeks_mid_run_are_serviced_without_disruption() {
    // §8.1: fast-forward/rewind are just seeks plus a re-prime; the rest
    // of the population must be unaffected and the seeking terminal must
    // keep streaming from its new positions.
    use spiffi_vod::core::VodSystem;

    let mut c = disk_bound_config();
    c.n_terminals = 8;
    let mut sys = VodSystem::new(c.clone());
    // A burst of fast-forwards and rewinds on terminal 3 during the run.
    for (i, &frame) in [3000u64, 120, 2500, 60].iter().enumerate() {
        sys.schedule_user_seek(SimTime::from_secs_f64(20.0 + 8.0 * i as f64), 3, frame);
    }
    let r = sys.run();
    assert!(r.glitch_free(), "seeking caused glitches: {}", r.summary());
    assert!(r.blocks_delivered > 100);

    // Determinism still holds with scheduled seeks.
    let mut sys2 = VodSystem::new(c);
    for (i, &frame) in [3000u64, 120, 2500, 60].iter().enumerate() {
        sys2.schedule_user_seek(SimTime::from_secs_f64(20.0 + 8.0 * i as f64), 3, frame);
    }
    let r2 = sys2.run();
    assert_eq!(r.blocks_delivered, r2.blocks_delivered);
}

#[test]
fn capacity_scales_with_disk_count() {
    // The §7.6 property at miniature scale: doubling disks (and videos,
    // and memory) roughly doubles the glitch-free capacity.
    let search = CapacitySearch {
        lo: 4,
        hi: 80,
        step: 2,
        replications: 1,
    };
    let mut one = disk_bound_config();
    one.topology = Topology {
        nodes: 1,
        disks_per_node: 1,
    };
    one.n_videos = 20;
    one.server_memory_bytes = 12 * 1024 * 1024;
    let mut two = one.clone();
    two.topology = Topology {
        nodes: 1,
        disks_per_node: 2,
    };
    two.n_videos = 40;
    two.server_memory_bytes = 24 * 1024 * 1024;

    let c1 = max_glitch_free_terminals(&one, &search).max_terminals;
    let c2 = max_glitch_free_terminals(&two, &search).max_terminals;
    assert!(
        c2 as f64 >= 1.6 * c1 as f64,
        "2 disks supported {c2} vs {c1} on one disk"
    );
}

#[test]
fn visual_search_fast_forwards_through_the_title() {
    // §8.1 skip-based search: show 2 s, skip 8 s. Over a 30 s search the
    // terminal should traverse ~5x as much content as normal playback,
    // without loading the server proportionally.
    use spiffi_vod::core::{VisualSearch, VodSystem};

    let mut c = disk_bound_config();
    c.n_terminals = 6;
    c.video.duration = SimDuration::from_secs(300);
    c.n_videos = 40;
    // Aligned start at frame 0 so traversal is measurable.
    c.initial_position = InitialPosition::Start;

    let search = VisualSearch {
        show: SimDuration::from_secs(2),
        skip: SimDuration::from_secs(8),
        forward: true,
    };
    let build = |with_search: bool| {
        let mut sys = VodSystem::new(c.clone());
        if with_search {
            sys.schedule_visual_search(
                SimTime::from_secs_f64(20.0),
                0,
                search,
                SimDuration::from_secs(30),
            );
        }
        sys
    };

    let plain = build(false);
    let searched = build(true);
    let r_plain = plain.run();
    let r_search = searched.run();
    assert!(
        r_search.glitch_free(),
        "search caused glitches: {}",
        r_search.summary()
    );

    // The claim to verify is §8.1's: "the skipped video segments need not
    // be read". Over 30 s at show=2/skip=8 the search traverses ~150 s of
    // content; reading it all would cost ~120 extra blocks over the plain
    // run. The actual overhead is only the per-jump re-prime (~4 blocks ×
    // 15 jumps ≈ 60 blocks), well under half of that.
    let extra = r_search
        .blocks_delivered
        .saturating_sub(r_plain.blocks_delivered);
    assert!(
        extra < 100,
        "search read skipped segments: {extra} extra blocks ({} vs {})",
        r_search.blocks_delivered,
        r_plain.blocks_delivered
    );
    // And the searching terminal finishes its title sooner, reflected in
    // more completions across the run.
    assert!(r_search.videos_completed >= r_plain.videos_completed);
}

#[test]
fn smooth_search_versions_fast_forward_smoothly() {
    // §8.1's second scheme: dedicated search versions give a smooth
    // constant-rate preview stream; a 10 s search at 8x traverses ~80 s of
    // content, after which normal playback resumes from the new position.
    use spiffi_vod::core::VodSystem;

    let mut c = disk_bound_config();
    c.n_terminals = 6;
    c.n_videos = 20;
    c.video.duration = SimDuration::from_secs(240);
    c.search_speedup = Some(8);
    c.initial_position = InitialPosition::Start;

    let build = |with_search: bool| {
        let mut sys = VodSystem::new(c.clone());
        if with_search {
            sys.schedule_smooth_search(
                SimTime::from_secs_f64(20.0),
                0,
                true,
                SimDuration::from_secs(10),
            );
        }
        sys
    };

    let r_plain = build(false).run();
    let r_search = build(true).run();
    assert!(r_search.glitch_free(), "{}", r_search.summary());
    // The searching terminal skips ahead ~70 s of content, finishing its
    // 240 s title sooner; across the run completions can only go up.
    assert!(r_search.videos_completed >= r_plain.videos_completed);
    // The preview stream runs at the same 4 Mbit/s, so server load is
    // essentially unchanged (within a re-prime or two).
    let extra = r_search.blocks_delivered.abs_diff(r_plain.blocks_delivered);
    assert!(
        extra < 60,
        "smooth search changed load too much: {} vs {}",
        r_search.blocks_delivered,
        r_plain.blocks_delivered
    );
}

#[test]
fn search_versions_cost_the_advertised_disk_space() {
    use spiffi_vod::mpeg::Library;
    let plain = Library::generate(
        8,
        spiffi_vod::mpeg::VideoParams {
            duration: SimDuration::from_secs(120),
            ..Default::default()
        },
        9,
    );
    let with = Library::generate_with_search_versions(
        8,
        spiffi_vod::mpeg::VideoParams {
            duration: SimDuration::from_secs(120),
            ..Default::default()
        },
        9,
        8,
    );
    let overhead = with.total_bytes() as f64 / plain.total_bytes() as f64;
    // "a small amount of additional disk space": 1/8 ≈ 12.5 %.
    assert!((1.10..1.16).contains(&overhead), "overhead {overhead}");
}

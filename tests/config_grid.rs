//! Configuration-grid sweep: every combination of scheduler × policy ×
//! prefetcher × placement runs a short simulation without panicking, with
//! sane reports and bit-identical determinism. This is the guard rail for
//! the whole configuration space the experiment binaries walk.

use spiffi_vod::core::config::InitialPosition;
use spiffi_vod::prelude::*;

fn grid_base() -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.topology = Topology {
        nodes: 2,
        disks_per_node: 2,
    };
    c.n_videos = 16;
    c.video.duration = SimDuration::from_secs(90);
    c.server_memory_bytes = 32 * 1024 * 1024;
    c.n_terminals = 10;
    c.initial_position = InitialPosition::UniformWithinVideo;
    c.timing = RunTiming {
        stagger: SimDuration::from_secs(4),
        warmup: SimDuration::from_secs(10),
        measure: SimDuration::from_secs(25),
    };
    c
}

fn schedulers() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Fcfs,
        SchedulerKind::Edf,
        SchedulerKind::Elevator,
        SchedulerKind::RoundRobin,
        SchedulerKind::Gss { groups: 3 },
        SchedulerKind::RealTime {
            classes: 3,
            spacing: SimDuration::from_secs(4),
        },
    ]
}

fn prefetchers() -> Vec<PrefetchKind> {
    vec![
        PrefetchKind::Off,
        PrefetchKind::Standard { processes: 1 },
        PrefetchKind::RealTime { processes: 3 },
        PrefetchKind::Delayed {
            processes: 3,
            max_advance: SimDuration::from_secs(6),
        },
    ]
}

fn placements() -> Vec<Placement> {
    vec![
        Placement::Striped,
        Placement::NonStriped,
        Placement::StripeGroup { width: 2 },
    ]
}

fn check_report(r: &RunReport, label: &str) {
    assert!(r.blocks_delivered > 0, "{label}: no data flowed");
    for &u in &r.disk_utilizations {
        assert!((0.0..=1.0).contains(&u), "{label}: disk util {u}");
    }
    assert!(
        (0.0..=1.0).contains(&r.avg_cpu_utilization),
        "{label}: cpu util {}",
        r.avg_cpu_utilization
    );
    assert!(
        r.pool.lookups >= r.pool.resident_hits + r.pool.inflight_hits + r.pool.misses,
        "{label}: pool accounting drift {:?}",
        r.pool
    );
    assert!(
        r.prefetch.issued <= r.prefetch.enqueued,
        "{label}: prefetch accounting drift {:?}",
        r.prefetch
    );
    assert!(r.io_latency_max_ms >= r.io_latency_mean_ms || r.pool.misses == 0);
}

#[test]
fn scheduler_x_prefetcher_grid_runs_and_is_deterministic() {
    for sched in schedulers() {
        for pf in prefetchers() {
            let mut c = grid_base().with_scheduler(sched);
            c.prefetch = pf;
            let label = format!("{}/{}", sched.label(), pf.label());
            let a = run_once(&c);
            check_report(&a, &label);
            let b = run_once(&c);
            assert_eq!(
                (a.blocks_delivered, a.glitches, a.events_processed),
                (b.blocks_delivered, b.glitches, b.events_processed),
                "{label}: nondeterministic"
            );
        }
    }
}

#[test]
fn policy_x_placement_grid_runs() {
    for policy in [PolicyKind::GlobalLru, PolicyKind::LovePrefetch] {
        for placement in placements() {
            let mut c = grid_base();
            c.policy = policy;
            c.placement = placement;
            let label = format!("{}/{:?}", policy.label(), placement);
            let r = run_once(&c);
            check_report(&r, &label);
        }
    }
}

#[test]
fn stripe_size_x_terminal_memory_grid_runs() {
    for stripe_kb in [128u64, 512, 1024] {
        for term_mb in [2u64, 4] {
            let mut c = grid_base();
            c.stripe_bytes = stripe_kb * 1024;
            c.terminal_memory_bytes = term_mb * 1024 * 1024;
            let label = format!("{stripe_kb}KB/{term_mb}MB");
            let r = run_once(&c);
            check_report(&r, &label);
        }
    }
}

#[test]
fn feature_combinations_run() {
    // Pauses + piggybacking + aligned starts + real-time + delayed
    // prefetching + stripe groups, all at once.
    let mut c = grid_base().with_scheduler(SchedulerKind::RealTime {
        classes: 3,
        spacing: SimDuration::from_secs(4),
    });
    c.policy = PolicyKind::LovePrefetch;
    c.prefetch = PrefetchKind::Delayed {
        processes: 3,
        max_advance: SimDuration::from_secs(6),
    };
    c.placement = Placement::StripeGroup { width: 2 };
    c.pause = Some(PauseConfig::default());
    c.piggyback_delay = Some(SimDuration::from_secs(15));
    c.initial_position = InitialPosition::Start;
    let r = run_once(&c);
    check_report(&r, "kitchen-sink");
}

//! Integration tests of the `spiffi-vod` command-line interface: the
//! binary is built by cargo and driven as a subprocess.

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spiffi-vod"))
        .args(args)
        .output()
        .expect("failed to launch spiffi-vod")
}

fn small_args() -> Vec<&'static str> {
    vec![
        "--nodes",
        "1",
        "--disks-per-node",
        "2",
        "--videos",
        "16",
        "--video-secs",
        "120",
        "--server-mem-mb",
        "64",
        "--terminals",
        "8",
        "--stagger-secs",
        "5",
        "--warmup-secs",
        "10",
        "--measure-secs",
        "30",
    ]
}

#[test]
fn help_prints_usage() {
    let out = cli(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
    assert!(text.contains("capacity"));
}

#[test]
fn simulate_prints_report() {
    let mut args = vec!["simulate"];
    args.extend(small_args());
    let out = cli(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("terminals=8"), "{text}");
    assert!(text.contains("glitches=0"), "{text}");
    assert!(text.contains("io latency"), "{text}");
}

#[test]
fn simulate_csv_is_machine_readable() {
    let mut args = vec!["simulate"];
    args.extend(small_args());
    args.push("--csv");
    let out = cli(&args);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.trim().lines().collect();
    assert_eq!(lines.len(), 2, "header + one data row: {text}");
    let header_cols = lines[0].split(',').count();
    let data_cols = lines[1].split(',').count();
    assert_eq!(header_cols, data_cols);
    assert!(lines[1].starts_with("8,0,"), "{text}");
}

#[test]
fn capacity_finds_a_knee() {
    let mut args = vec!["capacity"];
    args.extend(small_args());
    args.extend(["--lo", "2", "--hi", "60", "--step", "4", "--csv"]);
    let out = cli(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let data = text.trim().lines().nth(1).expect("data row");
    let max: u32 = data.split(',').next().unwrap().parse().unwrap();
    assert!(
        (4..=60).contains(&max),
        "capacity {max} out of band: {text}"
    );
}

#[test]
fn scheduler_and_placement_flags_parse() {
    let mut args = vec!["simulate"];
    args.extend(small_args());
    args.extend([
        "--scheduler",
        "real-time:3:4",
        "--policy",
        "love-prefetch",
        "--prefetch",
        "delayed:4:8",
        "--placement",
        "group:2",
        "--access",
        "zipf:1.5",
    ]);
    let out = cli(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_flags_are_rejected_with_nonzero_exit() {
    let out = cli(&["simulate", "--scheduler", "quantum"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheduler"), "{err}");

    let out = cli(&["teleport"]);
    assert!(!out.status.success());

    let out = cli(&["simulate", "--stripe-kb", "0"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid configuration"), "{err}");
}

#[test]
fn pauses_and_piggyback_flags_work() {
    let mut args = vec!["simulate"];
    args.extend(small_args());
    args.extend(["--pauses", "--piggyback-secs", "20", "--aligned-starts"]);
    let out = cli(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

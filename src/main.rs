//! `spiffi-vod` — command-line front end to the SPIFFI simulator.
//!
//! ```console
//! $ spiffi-vod simulate --terminals 200
//! $ spiffi-vod capacity --scheduler real-time:3:4 --server-mem-mb 512
//! $ spiffi-vod simulate --nodes 4 --disks-per-node 8 --csv
//! ```
//!
//! Two subcommands:
//!
//! * `simulate` — run one configuration and print its measurement report;
//! * `capacity` — find the maximum glitch-free terminal count (§7.1).
//!
//! Every knob of [`SystemConfig`] is exposed as a flag; run with `--help`
//! for the list.

use std::process::ExitCode;

use spiffi_vod::core::config::InitialPosition;
use spiffi_vod::prelude::*;

const HELP: &str = "\
spiffi-vod — the SPIFFI scalable video-on-demand simulator (SIGMOD 1995)

USAGE:
    spiffi-vod <simulate|capacity> [OPTIONS]

SUBCOMMANDS:
    simulate    run one configuration and print the measurement report
    capacity    find the maximum glitch-free terminal count

SERVER OPTIONS:
    --nodes N               server nodes                    [default: 4]
    --disks-per-node D      disks per node                  [default: 4]
    --server-mem-mb M       aggregate server memory, MB     [default: 4096]
    --stripe-kb K           stripe (and read) size, KB      [default: 512]
    --scheduler S           fcfs | edf | elevator | round-robin | gss:G |
                            real-time:CLASSES:SPACING_SECS  [default: elevator]
    --policy P              global-lru | love-prefetch      [default: global-lru]
    --prefetch P            off | standard:N | real-time:N | delayed:N:SECS
                            [default: tuned to the scheduler]
    --placement P           striped | non-striped | group:WIDTH [default: striped]

WORKLOAD OPTIONS:
    --terminals T           active terminals                [default: 200]
    --terminal-mem-kb K     per-terminal buffer, KB         [default: 2048]
    --videos V              titles in the library           [default: 4 per disk]
    --video-secs S          title length, seconds           [default: 3600]
    --access A              uniform | zipf:Z                [default: zipf:1.0]
    --pauses                enable the Fig-19 pause workload
    --piggyback-secs S      enable piggybacking with an S-second delay
    --search-speedup K      store §8.1 search versions at K× speed
    --aligned-starts        first titles start at frame 0 (default: steady state)

RUN OPTIONS:
    --measure-secs S        measurement window              [default: 600]
    --warmup-secs S         warm-up before measuring        [default: 150]
    --stagger-secs S        terminal start stagger          [default: 60]
    --seed N                master random seed              [default: 0x5b1ff1]
    --csv                   machine-readable one-line output

CAPACITY OPTIONS:
    --lo N --hi N           search brackets                 [default: 20 400]
    --step N                answer granularity              [default: 10]
    --reps N                replications per probe          [default: 1]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            ExitCode::from(2)
        }
    }
}

struct Parsed {
    cfg: SystemConfig,
    csv: bool,
    lo: u32,
    hi: u32,
    step: u32,
    reps: u32,
}

fn run(args: &[String]) -> Result<(), String> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print!("{HELP}");
        return Ok(());
    }
    let command = args[0].as_str();
    if !matches!(command, "simulate" | "capacity") {
        return Err(format!("unknown subcommand `{command}`"));
    }
    let p = parse(&args[1..])?;
    p.cfg
        .validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;

    match command {
        "simulate" => simulate(&p),
        "capacity" => capacity_cmd(&p),
        _ => unreachable!(),
    }
    Ok(())
}

fn simulate(p: &Parsed) {
    let r = run_once(&p.cfg);
    if p.csv {
        println!(
            "terminals,glitches,glitching_terminals,blocks_delivered,avg_disk_util,\
             avg_cpu_util,net_peak_mbps,pool_hit_rate,shared_ref_rate,\
             io_latency_mean_ms,io_latency_p95_ms,deadline_misses"
        );
        println!(
            "{},{},{},{},{:.4},{:.4},{:.2},{:.4},{:.4},{:.2},{:.2},{}",
            r.terminals,
            r.glitches,
            r.glitching_terminals,
            r.blocks_delivered,
            r.avg_disk_utilization,
            r.avg_cpu_utilization,
            r.net_peak_bytes_per_sec / 1e6,
            r.pool.hit_rate(),
            r.pool.shared_reference_rate(),
            r.io_latency_mean_ms,
            r.io_latency_p95_ms,
            r.deadline_misses,
        );
        return;
    }
    println!("{}", r.summary());
    println!(
        "  io latency: mean {:.1} ms, p95 {:.1} ms, max {:.1} ms; deadline misses: {}",
        r.io_latency_mean_ms, r.io_latency_p95_ms, r.io_latency_max_ms, r.deadline_misses
    );
    println!(
        "  delivered {:.1} MB/s over {:.0} s ({} blocks, {} titles completed)",
        r.delivery_bytes_per_sec(p.cfg.stripe_bytes) / 1e6,
        r.measured.as_secs_f64(),
        r.blocks_delivered,
        r.videos_completed,
    );
}

fn capacity_cmd(p: &Parsed) {
    let search = CapacitySearch {
        lo: p.lo,
        hi: p.hi,
        step: p.step,
        replications: p.reps,
    };
    let result = max_glitch_free_terminals(&p.cfg, &search);
    if p.csv {
        println!("max_terminals,probes");
        println!("{},{}", result.max_terminals, result.probes.len());
        return;
    }
    for (n, g) in &result.probes {
        println!("  probe {n:>5} terminals -> {g} glitches");
    }
    println!("max glitch-free terminals: {}", result.max_terminals);
}

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut cfg = SystemConfig::paper_base();
    let mut csv = false;
    let mut videos_explicit = false;
    let (mut lo, mut hi, mut step, mut reps) = (20u32, 400u32, 10u32, 1u32);
    let mut scheduler_explicit: Option<SchedulerKind> = None;
    let mut prefetch_explicit: Option<PrefetchKind> = None;

    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--nodes" => cfg.topology.nodes = parse_num(&value("--nodes")?)?,
            "--disks-per-node" => {
                cfg.topology.disks_per_node = parse_num(&value("--disks-per-node")?)?
            }
            "--server-mem-mb" => {
                cfg.server_memory_bytes =
                    parse_num::<u64>(&value("--server-mem-mb")?)? * 1024 * 1024
            }
            "--stripe-kb" => cfg.stripe_bytes = parse_num::<u64>(&value("--stripe-kb")?)? * 1024,
            "--scheduler" => scheduler_explicit = Some(parse_scheduler(&value("--scheduler")?)?),
            "--policy" => {
                cfg.policy = match value("--policy")?.as_str() {
                    "global-lru" => PolicyKind::GlobalLru,
                    "love-prefetch" => PolicyKind::LovePrefetch,
                    other => return Err(format!("unknown policy `{other}`")),
                }
            }
            "--prefetch" => prefetch_explicit = Some(parse_prefetch(&value("--prefetch")?)?),
            "--placement" => {
                cfg.placement = parse_placement(&value("--placement")?)?;
            }
            "--terminals" => cfg.n_terminals = parse_num(&value("--terminals")?)?,
            "--terminal-mem-kb" => {
                cfg.terminal_memory_bytes = parse_num::<u64>(&value("--terminal-mem-kb")?)? * 1024
            }
            "--videos" => {
                cfg.n_videos = parse_num(&value("--videos")?)?;
                videos_explicit = true;
            }
            "--video-secs" => {
                cfg.video.duration = SimDuration::from_secs(parse_num(&value("--video-secs")?)?)
            }
            "--access" => cfg.access = parse_access(&value("--access")?)?,
            "--pauses" => cfg.pause = Some(PauseConfig::default()),
            "--piggyback-secs" => {
                cfg.piggyback_delay = Some(SimDuration::from_secs(parse_num(&value(
                    "--piggyback-secs",
                )?)?))
            }
            "--aligned-starts" => cfg.initial_position = InitialPosition::Start,
            "--measure-secs" => {
                cfg.timing.measure = SimDuration::from_secs(parse_num(&value("--measure-secs")?)?)
            }
            "--warmup-secs" => {
                cfg.timing.warmup = SimDuration::from_secs(parse_num(&value("--warmup-secs")?)?)
            }
            "--stagger-secs" => {
                cfg.timing.stagger = SimDuration::from_secs(parse_num(&value("--stagger-secs")?)?)
            }
            "--seed" => cfg.seed = parse_num(&value("--seed")?)?,
            "--csv" => csv = true,
            "--lo" => lo = parse_num(&value("--lo")?)?,
            "--hi" => hi = parse_num(&value("--hi")?)?,
            "--step" => step = parse_num(&value("--step")?)?,
            "--reps" => reps = parse_num(&value("--reps")?)?,
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    // The library defaults to the paper's 4 titles per disk.
    if !videos_explicit {
        cfg.n_videos = (4 * cfg.topology.total_disks()) as usize;
    }
    if let Some(s) = scheduler_explicit {
        cfg = cfg.with_scheduler(s);
    }
    if let Some(p) = prefetch_explicit {
        cfg.prefetch = p;
    }
    Ok(Parsed {
        cfg,
        csv,
        lo,
        hi,
        step,
        reps,
    })
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("`{s}` is not a valid number"))
}

fn parse_scheduler(s: &str) -> Result<SchedulerKind, String> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["fcfs"] => Ok(SchedulerKind::Fcfs),
        ["edf"] => Ok(SchedulerKind::Edf),
        ["elevator"] => Ok(SchedulerKind::Elevator),
        ["round-robin"] => Ok(SchedulerKind::RoundRobin),
        ["gss", g] => Ok(SchedulerKind::Gss {
            groups: parse_num(g)?,
        }),
        ["real-time", c, sp] => Ok(SchedulerKind::RealTime {
            classes: parse_num(c)?,
            spacing: SimDuration::from_secs(parse_num(sp)?),
        }),
        _ => Err(format!(
            "unknown scheduler `{s}` (try elevator, fcfs, edf, round-robin, gss:4, real-time:3:4)"
        )),
    }
}

fn parse_prefetch(s: &str) -> Result<PrefetchKind, String> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["off"] => Ok(PrefetchKind::Off),
        ["standard", n] => Ok(PrefetchKind::Standard {
            processes: parse_num(n)?,
        }),
        ["real-time", n] => Ok(PrefetchKind::RealTime {
            processes: parse_num(n)?,
        }),
        ["delayed", n, secs] => Ok(PrefetchKind::Delayed {
            processes: parse_num(n)?,
            max_advance: SimDuration::from_secs(parse_num(secs)?),
        }),
        _ => Err(format!(
            "unknown prefetch `{s}` (try off, standard:1, real-time:4, delayed:4:8)"
        )),
    }
}

fn parse_placement(s: &str) -> Result<Placement, String> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["striped"] => Ok(Placement::Striped),
        ["non-striped"] => Ok(Placement::NonStriped),
        ["group", w] => Ok(Placement::StripeGroup {
            width: parse_num(w)?,
        }),
        _ => Err(format!(
            "unknown placement `{s}` (try striped, non-striped, group:4)"
        )),
    }
}

fn parse_access(s: &str) -> Result<AccessPattern, String> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["uniform"] => Ok(AccessPattern::Uniform),
        ["zipf", z] => Ok(AccessPattern::Zipf(
            z.parse().map_err(|_| format!("bad skew `{z}`"))?,
        )),
        _ => Err(format!(
            "unknown access pattern `{s}` (try uniform, zipf:1.0)"
        )),
    }
}

//! # spiffi-vod — the SPIFFI scalable video-on-demand system, reproduced
//!
//! A production-quality Rust reproduction of *"The SPIFFI Scalable
//! Video-on-Demand System"* (Craig S. Freedman and David J. DeWitt,
//! SIGMOD 1995): a deterministic discrete-event simulation of a
//! shared-nothing video server — striped storage, real-time disk
//! scheduling, love-prefetch buffer management, and delayed prefetching —
//! together with every baseline the paper compares against and a harness
//! that regenerates every table and figure of its evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof. Depend on it for everything, or on the individual crates
//! (`spiffi-core`, `spiffi-sched`, …) for narrower needs.
//!
//! ## Layered architecture
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | kernel | [`simcore`] | event calendar, clock, RNG, distributions, statistics |
//! | workload | [`mpeg`] | MPEG I/P/B frame streams, video library, Zipfian selection |
//! | storage | [`layout`] | Figure-3 striping, fragments, the non-striped baseline |
//! | hardware | [`disk`], [`cpu`], [`net`] | Seagate ST15150N mechanics, 40 MIPS FCFS CPUs, the wire |
//! | server | [`sched`], [`bufferpool`], [`prefetch`] | the five disk schedulers, two replacement policies, three prefetchers |
//! | system | [`core`] | terminals, nodes, the event loop, capacity search |
//!
//! ## Quick start
//!
//! ```
//! use spiffi_vod::core::{run_once, SystemConfig};
//!
//! // A 2-node × 2-disk server with sixteen 2-minute titles.
//! let mut cfg = SystemConfig::small_test();
//! cfg.n_terminals = 8;
//! let report = run_once(&cfg);
//! assert!(report.glitch_free());
//! println!("{}", report.summary());
//! ```
//!
//! The paper's primary metric — the maximum number of terminals a
//! configuration supports with zero glitches — is one call:
//!
//! ```no_run
//! use spiffi_vod::core::{max_glitch_free_terminals, CapacitySearch, SystemConfig};
//!
//! let cfg = SystemConfig::paper_base(); // 4×4 disks, 64 videos, 512 KB stripes
//! let result = max_glitch_free_terminals(&cfg, &CapacitySearch::default());
//! println!("max glitch-free terminals: {}", result.max_terminals);
//! ```

#![warn(missing_docs)]

pub use spiffi_bufferpool as bufferpool;
pub use spiffi_core as core;
pub use spiffi_cpu as cpu;
pub use spiffi_disk as disk;
pub use spiffi_layout as layout;
pub use spiffi_mpeg as mpeg;
pub use spiffi_net as net;
pub use spiffi_prefetch as prefetch;
pub use spiffi_sched as sched;
pub use spiffi_simcore as simcore;

/// The most commonly used types, for `use spiffi_vod::prelude::*`.
pub mod prelude {
    pub use spiffi_bufferpool::PolicyKind;
    pub use spiffi_core::{
        engine_threads, max_glitch_free_terminals, run_once, run_replications, CapacityResult,
        CapacitySearch, Engine, LibraryCache, PauseConfig, RunReport, RunTiming, SystemConfig,
        VodSystem,
    };
    pub use spiffi_layout::{Placement, Topology};
    pub use spiffi_mpeg::AccessPattern;
    pub use spiffi_prefetch::PrefetchKind;
    pub use spiffi_sched::SchedulerKind;
    pub use spiffi_simcore::{SimDuration, SimTime};
}

//! Capacity planning: how many subscribers can a given server shape carry?
//!
//! Reproduces the paper's §7.1 methodology (Figure 9) on a small server:
//! sweep the terminal count, watch glitches go from zero to nonzero, then
//! let the bracketed capacity search pin down the knee.
//!
//! Run with: `cargo run --release --example capacity_planning`

use spiffi_vod::prelude::*;

fn main() {
    // One node with two disks, memory far below the working set — the
    // interesting regime where disk bandwidth is the binding resource.
    let mut cfg = SystemConfig::small_test();
    cfg.topology = Topology {
        nodes: 1,
        disks_per_node: 2,
    };
    cfg.n_videos = 32;
    cfg.access = AccessPattern::Uniform;
    cfg.server_memory_bytes = 32 * 1024 * 1024;

    // One engine for the whole session: probes run on up to
    // `engine_threads()` worker threads (override with SPIFFI_THREADS) and
    // every run shares one cached copy of the generated video library.
    // With SPIFFI_WORKERS set, capacity searches dispatch to a pool of
    // spiffi-worker child processes instead.
    let engine = Engine::new();
    println!(
        "experiment engine: {} thread(s), {} worker process(es)\n",
        engine.threads(),
        engine.process_workers()
    );

    println!("glitch curve (the paper's Figure 9 procedure):");
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "terminals", "glitches", "disk util %", "net MB/s"
    );
    for n in (4..=44).step_by(8) {
        let mut c = cfg.clone();
        c.n_terminals = n;
        let r = engine.run(&c);
        println!(
            "{:>10} {:>10} {:>12.1} {:>10.1}",
            n,
            r.glitches,
            r.avg_disk_utilization * 100.0,
            r.net_peak_bytes_per_sec / 1e6
        );
    }

    println!("\nbracketed capacity search:");
    let search = CapacitySearch {
        lo: 4,
        hi: 64,
        step: 2,
        replications: 2,
    };
    let result = engine.max_glitch_free_terminals(&cfg, &search);
    for (n, g) in &result.probes {
        println!("  probed {n:>3} terminals -> {g} glitches");
    }
    println!(
        "\nmax glitch-free terminals on {} disks: {}",
        cfg.topology.total_disks(),
        result.max_terminals
    );
    println!(
        "(subscribers need ~{:.0} Mbit/s; the {} disks provide {:.0} Mbit/s raw — \
         the surplus is served by terminals inadvertently sharing buffered streams)",
        result.max_terminals as f64 * 4.0,
        cfg.topology.total_disks(),
        cfg.topology.total_disks() as f64 * 7.4 * 8.0 * 1.048576,
    );
}

//! Quickstart: build a small SPIFFI video server, stream to a couple dozen
//! terminals, and read the measurement report.
//!
//! Run with: `cargo run --release --example quickstart`

use spiffi_vod::prelude::*;

fn main() {
    // A 2-node × 2-disk server with sixteen 2-minute titles, love-prefetch
    // buffer management and elevator disk scheduling.
    let mut cfg = SystemConfig::small_test();
    cfg.n_terminals = 24;

    println!("SPIFFI video-on-demand quickstart");
    println!(
        "  server : {} nodes x {} disks, {} MB memory, {} KB stripes",
        cfg.topology.nodes,
        cfg.topology.disks_per_node,
        cfg.server_memory_bytes / (1024 * 1024),
        cfg.stripe_bytes / 1024,
    );
    println!(
        "  library: {} titles of {:.0} s at {} Mbit/s",
        cfg.n_videos,
        cfg.video.duration.as_secs_f64(),
        cfg.video.bit_rate_bps / 1_000_000,
    );
    println!(
        "  workload: {} terminals, scheduler={}, policy={:?}, prefetch={}",
        cfg.n_terminals,
        cfg.scheduler.label(),
        cfg.policy.label(),
        cfg.prefetch.label(),
    );

    // The engine caches the generated library by seed, so repeated runs of
    // related configurations skip the (deterministic) generation step.
    let engine = Engine::new();
    let report = engine.run(&cfg);

    println!(
        "\nafter {:.0} s of measured streaming:",
        report.measured.as_secs_f64()
    );
    println!("  glitches            : {}", report.glitches);
    println!("  blocks delivered    : {}", report.blocks_delivered);
    println!(
        "  delivery rate       : {:.1} MB/s",
        report.delivery_bytes_per_sec(cfg.stripe_bytes) / 1e6
    );
    println!(
        "  disk utilization    : avg {:.1}%  (min {:.1}%, max {:.1}%)",
        report.avg_disk_utilization * 100.0,
        report.min_disk_utilization * 100.0,
        report.max_disk_utilization * 100.0
    );
    println!(
        "  cpu utilization     : avg {:.1}%",
        report.avg_cpu_utilization * 100.0
    );
    println!(
        "  network peak        : {:.1} MB/s",
        report.net_peak_bytes_per_sec / 1e6
    );
    println!(
        "  buffer pool hit rate: {:.1}%",
        report.pool.hit_rate() * 100.0
    );
    println!(
        "  events processed    : {} ({} per simulated second)",
        report.events_processed,
        report.events_processed / (cfg.timing.total().as_secs_f64() as u64).max(1),
    );

    assert!(
        report.glitch_free(),
        "this configuration should be glitch-free"
    );
    println!("\nall {} terminals streamed glitch-free ✓", cfg.n_terminals);
}

//! Interactive viewing: pause, fast-forward and rewind (§8.1 of the paper).
//!
//! Drives one terminal through a scripted VCR session against a real video
//! title, using the same public API the simulator uses: priming, playback,
//! a pause (buffers keep filling), a fast-forward seek (re-prime at the new
//! position), and a rewind. "The procedure for the terminal is the same
//! regardless of where in the video it begins playback."
//!
//! Run with: `cargo run --release --example interactive_viewing`

use spiffi_vod::core::{PlayState, Terminal};
use spiffi_vod::mpeg::{Video, VideoId, VideoParams};
use spiffi_vod::prelude::*;

const BLOCK: u64 = 512 * 1024;

/// A toy "server" that satisfies every request after a fixed service time.
/// (The full queueing server lives in `VodSystem`; here the point is the
/// terminal-side mechanics.)
struct InstantServer {
    latency: SimDuration,
}

impl InstantServer {
    /// Deliver all requested blocks and pump the terminal at `now`.
    fn satisfy(
        &self,
        term: &mut Terminal,
        video: &Video,
        requests: &[u32],
        mut now: SimTime,
    ) -> SimTime {
        for &b in requests {
            now += self.latency;
            term.on_block_arrival(video, BLOCK, b, term.epoch());
        }
        now
    }
}

fn state_name(s: PlayState) -> &'static str {
    match s {
        PlayState::Idle => "idle",
        PlayState::Priming => "priming",
        PlayState::Playing { .. } => "playing",
        PlayState::Paused { .. } => "paused",
        PlayState::Finished => "finished",
    }
}

fn main() {
    let video = Video::generate(
        VideoId(0),
        VideoParams {
            duration: SimDuration::from_secs(300), // a 5-minute short
            ..VideoParams::default()
        },
        2026,
    );
    println!(
        "title: {:.1} MB, {} frames, {:.2} Mbit/s realized",
        video.total_bytes() as f64 / 1e6,
        video.num_frames(),
        video.actual_bit_rate_bps() / 1e6
    );

    let server = InstantServer {
        latency: SimDuration::from_millis(40),
    };
    let mut term = Terminal::new(0, 2 * 1024 * 1024);
    let mut now = SimTime::ZERO;

    // -- press PLAY, with a scheduled pause 20 s in, lasting 10 s ---------
    let pause_frame = 20 * 30;
    term.start_video(
        &video,
        BLOCK,
        0,
        vec![(pause_frame, SimDuration::from_secs(10))],
    );
    let p = term.pump(&video, BLOCK, now);
    println!(
        "[{now}] PLAY pressed: primes with {} block requests",
        p.requests.len()
    );
    now = server.satisfy(&mut term, &video, &p.requests, now);
    let mut p = term.pump(&video, BLOCK, now);
    assert!(matches!(term.state(), PlayState::Playing { .. }));
    println!("[{now}] primed -> {}", state_name(term.state()));

    // -- stream until the pause engages ------------------------------------
    let mut paused_at = None;
    while paused_at.is_none() {
        let wake = p.wake_at.expect("playback always schedules a wake");
        now = wake;
        p = term.pump(&video, BLOCK, now);
        now = server.satisfy(&mut term, &video, &p.requests, now);
        if p.paused {
            paused_at = Some(now);
        }
        assert!(!p.glitched, "instant server must not glitch");
    }
    println!("[{now}] PAUSE engaged at ~20 s of content; buffers keep filling");
    println!(
        "        buffered while paused: {:.2} MB of {:.2} MB",
        term.buffered_bytes() as f64 / 1e6,
        2.0
    );

    // -- resume fires automatically at the scheduled time ------------------
    let wake = p.wake_at.expect("paused terminal wakes at resume");
    now = wake;
    term.pump(&video, BLOCK, now);
    println!("[{now}] RESUME: state {}", state_name(term.state()));
    assert!(matches!(term.state(), PlayState::Playing { .. }));

    // -- fast-forward: jump to 4 minutes in, re-prime ----------------------
    now += SimDuration::from_secs(5);
    let target_frame = 240 * 30;
    term.start_video(&video, BLOCK, target_frame, vec![]);
    let pf = term.pump(&video, BLOCK, now);
    println!(
        "[{now}] FAST-FORWARD to 4:00 (frame {target_frame}): re-prime with blocks {:?}…",
        &pf.requests[..pf.requests.len().min(2)]
    );
    now = server.satisfy(&mut term, &video, &pf.requests, now);
    term.pump(&video, BLOCK, now);
    assert!(matches!(term.state(), PlayState::Playing { .. }));
    println!("[{now}] playing from the new position");

    // -- rewind to 1 minute ----------------------------------------------
    now += SimDuration::from_secs(3);
    term.start_video(&video, BLOCK, 60 * 30, vec![]);
    let pr = term.pump(&video, BLOCK, now);
    now = server.satisfy(&mut term, &video, &pr.requests, now);
    p = term.pump(&video, BLOCK, now);
    assert!(matches!(term.state(), PlayState::Playing { .. }));
    println!(
        "[{now}] REWIND to 1:00: playing again after a {} block re-prime",
        pr.requests.len()
    );

    // -- let the title run out -------------------------------------------
    let mut guard = 0;
    while !matches!(term.state(), PlayState::Finished) {
        let wake = match p.wake_at {
            Some(w) => w,
            None => break,
        };
        now = wake;
        p = term.pump(&video, BLOCK, now);
        now = server.satisfy(&mut term, &video, &p.requests, now);
        guard += 1;
        assert!(guard < 10_000, "session did not converge");
        assert!(!p.glitched, "instant server must not glitch");
    }
    println!(
        "[{now}] credits roll: {} glitches across the whole session",
        term.glitches_total()
    );
    assert_eq!(term.glitches_total(), 0);
}

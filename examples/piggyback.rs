//! Piggybacking terminals (§8.2 of the paper): intentionally delay the
//! first subscriber of a popular title so that later subscribers can share
//! one stream. "Experiments show that a 5 minute delay more than doubles
//! the number of terminals that may be supported glitch-free."
//!
//! This example compares the same small server with and without a batching
//! delay under a highly skewed (Zipf z = 1.5) workload with aligned starts.
//!
//! Run with: `cargo run --release --example piggyback`

use spiffi_vod::core::config::InitialPosition;
use spiffi_vod::prelude::*;

fn main() {
    let mut cfg = SystemConfig::small_test();
    cfg.topology = Topology {
        nodes: 1,
        disks_per_node: 2,
    };
    cfg.n_videos = 8;
    cfg.access = AccessPattern::Zipf(1.5);
    cfg.server_memory_bytes = 32 * 1024 * 1024;
    // Aligned starts: subscribers request titles over a short window, as
    // they would at the top of the hour.
    cfg.initial_position = InitialPosition::Start;
    cfg.timing = RunTiming {
        stagger: SimDuration::from_secs(20),
        warmup: SimDuration::from_secs(40),
        measure: SimDuration::from_secs(120),
    };

    println!(
        "workload: Zipf z=1.5 over {} titles, {} disks",
        cfg.n_videos,
        cfg.topology.total_disks()
    );
    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "terminals", "glitches (none)", "glitches (30 s)", "piggybacked"
    );

    // One engine shares the cached library across every run and capacity
    // search below (the library depends only on the seed, not the delay).
    let engine = Engine::new();
    for n in [16u32, 32, 48, 64] {
        let mut plain = cfg.clone();
        plain.n_terminals = n;
        let r_plain = engine.run(&plain);

        let mut batched = plain.clone();
        batched.piggyback_delay = Some(SimDuration::from_secs(30));
        let r_batched = engine.run(&batched);

        println!(
            "{:>10} {:>16} {:>16} {:>14}",
            n, r_plain.glitches, r_batched.glitches, r_batched.terminals_piggybacked
        );
    }

    println!("\ncapacity with and without a 30 s batching delay:");
    let search = CapacitySearch {
        lo: 8,
        hi: 128,
        step: 4,
        replications: 2,
    };
    let plain = engine.max_glitch_free_terminals(&cfg, &search);
    let mut batched_cfg = cfg.clone();
    batched_cfg.piggyback_delay = Some(SimDuration::from_secs(30));
    let batched = engine.max_glitch_free_terminals(&batched_cfg, &search);
    println!("  no piggybacking : {} terminals", plain.max_terminals);
    println!("  30 s batching   : {} terminals", batched.max_terminals);
    let gain = batched.max_terminals as f64 / plain.max_terminals.max(1) as f64;
    println!("  gain            : {gain:.2}x");
}

//! Scheduler shoot-out: drive the same near-saturation workload through
//! all six disk schedulers and compare glitches, I/O latency and deadline
//! misses — the observability extensions on top of the paper's metrics.
//!
//! Run with: `cargo run --release --example scheduler_shootout`

use spiffi_vod::prelude::*;

fn main() {
    // A single node with two disks at ~90% of its capacity.
    let mut cfg = SystemConfig::small_test();
    cfg.topology = Topology {
        nodes: 1,
        disks_per_node: 2,
    };
    cfg.n_videos = 40;
    cfg.access = AccessPattern::Uniform;
    cfg.server_memory_bytes = 24 * 1024 * 1024;
    cfg.initial_position = spiffi_vod::core::config::InitialPosition::UniformWithinVideo;
    cfg.n_terminals = 26;
    cfg.timing = RunTiming {
        stagger: SimDuration::from_secs(5),
        warmup: SimDuration::from_secs(20),
        measure: SimDuration::from_secs(120),
    };

    println!(
        "{} terminals on {} disks (~{:.0}% of raw bandwidth), per scheduler:\n",
        cfg.n_terminals,
        cfg.topology.total_disks(),
        cfg.n_terminals as f64 * 0.5 / (2.0 * 7.4) * 100.0
    );
    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "scheduler", "glitches", "io mean ms", "io p95 ms", "io max ms", "ddl misses"
    );
    println!("{}", "-".repeat(72));

    // All six runs use the same seed, so the engine generates the video
    // library once and serves the other five from its cache.
    let engine = Engine::new();
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Edf,
        SchedulerKind::Elevator,
        SchedulerKind::RoundRobin,
        SchedulerKind::Gss { groups: 4 },
        SchedulerKind::RealTime {
            classes: 3,
            spacing: SimDuration::from_secs(4),
        },
    ] {
        let c = cfg.clone().with_scheduler(kind);
        let r = engine.run(&c);
        println!(
            "{:<18} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10}",
            kind.label(),
            r.glitches,
            r.io_latency_mean_ms,
            r.io_latency_p95_ms,
            r.io_latency_max_ms,
            r.deadline_misses,
        );
    }

    println!(
        "\nSeek-aware sweeps (elevator, gss) keep demand latency tails short; \
         round-robin pays full positioning costs; the deadline-aware \
         schedulers deliberately let lazy demand reads wait behind urgent \
         prefetches, which is invisible to subscribers as long as deadline \
         misses stay at zero."
    );
}
